package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"chipletnet/internal/jsonl"
	"chipletnet/internal/packet"
)

// traceFormat is the magic the header's "format" field must carry.
const traceFormat = "chipletnet-trace"

// header is the first line of a native trace file. Carrying the entry
// count up front is what makes truncation detectable: unlike the
// append-only JSONL stores (internal/jsonl), a trace is written whole,
// so a short file is damage, not a crash-mid-append to forgive.
type header struct {
	Format    string `json:"format"`
	Version   int    `json:"version"`
	Endpoints int    `json:"endpoints"`
	Entries   int    `json:"entries"`
}

// Encode writes the trace in the native format: one header line followed
// by one JSON line per entry. The output is byte-deterministic for a
// given trace.
func (t *Trace) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{
		Format:    traceFormat,
		Version:   FormatVersion,
		Endpoints: t.Endpoints,
		Entries:   len(t.Entries),
	}); err != nil {
		return err
	}
	for i := range t.Entries {
		if err := enc.Encode(&t.Entries[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a native trace, strictly: a bad header is ErrNotTrace (or
// ErrVersion), fewer entries than the header declares is ErrTruncated —
// including a torn final line — and any interior damage or invariant
// violation is ErrCorrupt. All are typed; none panic.
func Decode(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lines := bytes.Split(data, []byte("\n"))
	// Drop trailing empty fragments (the final newline splits into one).
	for len(lines) > 0 && len(bytes.TrimSpace(lines[len(lines)-1])) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("%w: empty file", ErrNotTrace)
	}
	var h header
	if err := json.Unmarshal(lines[0], &h); err != nil || h.Format != traceFormat {
		return nil, fmt.Errorf("%w: bad header line", ErrNotTrace)
	}
	if h.Version != FormatVersion {
		return nil, fmt.Errorf("%w: version %d (this build reads version %d)", ErrVersion, h.Version, FormatVersion)
	}
	if h.Entries < 0 {
		return nil, fmt.Errorf("%w: negative entry count %d", ErrCorrupt, h.Entries)
	}
	body := lines[1:]
	if len(body) < h.Entries {
		return nil, fmt.Errorf("%w: header declares %d entries, file holds %d", ErrTruncated, h.Entries, len(body))
	}
	if len(body) > h.Entries {
		return nil, fmt.Errorf("%w: header declares %d entries, file holds %d", ErrCorrupt, h.Entries, len(body))
	}
	t := &Trace{Version: h.Version, Endpoints: h.Endpoints, Entries: make([]Entry, h.Entries)}
	for i, line := range body {
		if err := json.Unmarshal(line, &t.Entries[i]); err != nil {
			if i == len(body)-1 {
				// A torn final line is the truncation signature: the tail
				// of the last entry never made it to disk.
				return nil, fmt.Errorf("%w: torn final entry line", ErrTruncated)
			}
			return nil, fmt.Errorf("%w: entry line %d: %v", ErrCorrupt, i, err)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// WriteFile writes the trace atomically (temp file + sync + rename, the
// internal/checkpoint idiom), so a crash mid-write never leaves a
// half-trace under the final name.
func WriteFile(path string, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := t.Encode(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadFile reads and validates a native trace file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// externalRecord is one line of an external dependency-annotated trace:
// full-name JSON keys, class by name, dependencies by the external id.
type externalRecord struct {
	ID    int64  `json:"id"`
	Cycle int64  `json:"cycle"`
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	Flits int    `json:"flits"`
	Class string `json:"class"`
	Dep   *int64 `json:"dep"`
}

// Import loads an external dependency-annotated JSONL trace through the
// tolerant loader (internal/jsonl): unparseable or invalid lines are
// quarantined to a .rej sidecar and the load continues — external traces
// come from other tools and one bad line must not discard the rest. The
// surviving records are sorted by (cycle, file order), re-numbered
// densely, and their dependencies remapped; a dependency on a record that
// was quarantined, missing, or not strictly earlier is an error (the
// causal structure is the point of such traces, so it cannot be patched
// silently). Returns the trace and the quarantined line count.
func Import(path string, endpoints int) (*Trace, int, error) {
	if endpoints < 2 {
		return nil, 0, fmt.Errorf("workload: import needs at least 2 endpoints, got %d", endpoints)
	}
	var recs []externalRecord
	quarantined, err := jsonl.Load(path, func(line []byte) error {
		var r externalRecord
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		if r.Cycle < 0 {
			return fmt.Errorf("negative cycle %d", r.Cycle)
		}
		if r.Src < 0 || r.Src >= endpoints || r.Dst < 0 || r.Dst >= endpoints || r.Src == r.Dst {
			return fmt.Errorf("bad endpoints %d->%d", r.Src, r.Dst)
		}
		if r.Flits < 1 {
			return fmt.Errorf("no payload")
		}
		if r.Class != "" {
			if _, ok := packet.ClassByName(r.Class); !ok {
				return fmt.Errorf("unknown class %q", r.Class)
			}
		}
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		return nil, quarantined, err
	}
	if len(recs) == 0 {
		return nil, quarantined, fmt.Errorf("workload: %s holds no importable records", path)
	}
	order := make([]int, len(recs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return recs[order[a]].Cycle < recs[order[b]].Cycle })

	newID := make(map[int64]int64, len(recs))
	for pos, idx := range order {
		r := recs[idx]
		if _, dup := newID[r.ID]; dup {
			return nil, quarantined, fmt.Errorf("workload: %s: duplicate record id %d", path, r.ID)
		}
		newID[r.ID] = int64(pos)
	}
	t := &Trace{Version: FormatVersion, Endpoints: endpoints, Entries: make([]Entry, len(recs))}
	for pos, idx := range order {
		r := recs[idx]
		cl := packet.ClassBestEffort
		if r.Class != "" {
			cl, _ = packet.ClassByName(r.Class)
		}
		dep := packet.NoDep
		if r.Dep != nil {
			d, ok := newID[*r.Dep]
			if !ok {
				return nil, quarantined, fmt.Errorf("workload: %s: record %d depends on unknown record %d", path, r.ID, *r.Dep)
			}
			if d >= int64(pos) {
				return nil, quarantined, fmt.Errorf("workload: %s: record %d depends on record %d which is not strictly earlier", path, r.ID, *r.Dep)
			}
			dep = d
		}
		t.Entries[pos] = Entry{
			ID:    int64(pos),
			Cycle: r.Cycle,
			Src:   r.Src,
			Dst:   r.Dst,
			Flits: r.Flits,
			Msg:   uint64(pos),
			Seq:   0,
			Class: cl,
			Dep:   dep,
		}
	}
	if err := t.Validate(); err != nil {
		return nil, quarantined, err
	}
	return t, quarantined, nil
}
