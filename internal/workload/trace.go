// Package workload defines the trace-driven workload layer: a versioned,
// deterministic packet-trace format, a recorder that cuts a trace from any
// live run, and an importer for external dependency-annotated traces. The
// traces drive internal/traffic's causal replayer, so design candidates
// can be ranked under the traffic they will actually carry instead of
// synthetic Bernoulli patterns.
package workload

import (
	"errors"
	"fmt"

	"chipletnet/internal/packet"
)

// FormatVersion is the native trace format version. Bump it when Entry
// gains fields whose absence changes replay semantics; ReadTrace rejects
// other versions with ErrVersion.
const FormatVersion = 1

// Typed trace-format errors; test with errors.Is.
var (
	// ErrNotTrace: the file does not start with a chipletnet trace header.
	ErrNotTrace = errors.New("workload: not a chipletnet trace")
	// ErrVersion: the trace was written by an incompatible format version.
	ErrVersion = errors.New("workload: unsupported trace format version")
	// ErrTruncated: the file ends before the entry count its header
	// declares (crash or partial copy cut off the tail).
	ErrTruncated = errors.New("workload: truncated trace")
	// ErrCorrupt: an interior line is unparseable or an entry violates a
	// format invariant.
	ErrCorrupt = errors.New("workload: corrupt trace")
)

// Entry is one packet of a trace: where and when it was created, its
// size, its interleave identity, its QoS class, and the packet it
// causally depended on. Entry IDs are dense injection order, so the
// entry index, the entry ID and the replayed packet ID all coincide.
type Entry struct {
	// ID is the dense entry id (== index == replayed packet id).
	ID int64 `json:"i"`
	// Cycle is the creation cycle. Replay injects at
	// max(Cycle, dependency delivery + 1).
	Cycle int64 `json:"c"`
	// Src and Dst are dense endpoint indices (not global node ids), so a
	// trace recorded on one candidate replays on any candidate with the
	// same endpoint count.
	Src int `json:"s"`
	Dst int `json:"d"`
	// Flits is the packet length.
	Flits int `json:"f"`
	// Msg and Seq are the packet's message identity (the interleave
	// unit); the replayer re-derives the interleave tag from them under
	// the target configuration's policy.
	Msg uint64 `json:"m"`
	Seq int    `json:"q"`
	// Class is the QoS traffic class (packet.Class*).
	Class uint8 `json:"k"`
	// Dep is the ID of the entry whose delivery this packet's injection
	// waited on, or packet.NoDep. The causality rule: a packet with a
	// dependency is injected no earlier than the cycle after its
	// dependency is delivered.
	Dep int64 `json:"p"`
}

// Trace is a complete recorded or imported workload.
type Trace struct {
	// Version is the format version the trace was read as.
	Version int
	// Endpoints is the endpoint count the dense Src/Dst indices address.
	Endpoints int
	// Entries is the packet list in injection order.
	Entries []Entry
}

// Validate checks the trace invariants the replayer relies on: dense IDs,
// non-decreasing creation cycles, in-range endpoints and classes, and
// dependencies that point strictly backwards.
func (t *Trace) Validate() error {
	if t.Endpoints < 2 {
		return fmt.Errorf("%w: %d endpoints (need at least 2)", ErrCorrupt, t.Endpoints)
	}
	prev := int64(0)
	for i, e := range t.Entries {
		if e.ID != int64(i) {
			return fmt.Errorf("%w: entry %d has id %d (ids must be dense)", ErrCorrupt, i, e.ID)
		}
		if e.Cycle < prev {
			return fmt.Errorf("%w: entry %d created at cycle %d after cycle %d (cycles must be non-decreasing)", ErrCorrupt, i, e.Cycle, prev)
		}
		prev = e.Cycle
		if e.Src < 0 || e.Src >= t.Endpoints || e.Dst < 0 || e.Dst >= t.Endpoints || e.Src == e.Dst {
			return fmt.Errorf("%w: entry %d has bad endpoints %d->%d (of %d)", ErrCorrupt, i, e.Src, e.Dst, t.Endpoints)
		}
		if e.Flits < 1 {
			return fmt.Errorf("%w: entry %d has no payload", ErrCorrupt, i)
		}
		if e.Seq < 0 {
			return fmt.Errorf("%w: entry %d has negative sequence %d", ErrCorrupt, i, e.Seq)
		}
		if e.Class >= packet.NumClasses {
			return fmt.Errorf("%w: entry %d has unknown class %d", ErrCorrupt, i, e.Class)
		}
		if e.Dep != packet.NoDep && (e.Dep < 0 || e.Dep >= e.ID) {
			return fmt.Errorf("%w: entry %d depends on entry %d (dependencies must point strictly backwards)", ErrCorrupt, i, e.Dep)
		}
	}
	return nil
}
