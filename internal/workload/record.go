package workload

import (
	"fmt"

	"chipletnet/internal/packet"
	"chipletnet/internal/router"
	"chipletnet/internal/trace"
)

// Recorder cuts a workload trace from a live run. It implements
// router.Tracer but keeps only inject and deliver events (hop movements
// are path-analysis detail, not workload), so memory stays proportional
// to packets. Install it as the fabric Tracer before the run; packet
// pooling is automatically gated off while any Tracer is attached, so
// the recorded packet fields are never recycled under it.
type Recorder struct {
	endpointOf map[int]int // global node id -> dense endpoint index
	endpoints  int
	entries    []Entry
	delivered  []int64 // per entry: delivery cycle, -1 while in flight
	err        error   // first invariant violation, sticky
}

var _ router.Tracer = (*Recorder)(nil)

// NewRecorder returns a recorder for a run whose traffic endpoints are
// the given global node ids (in dense endpoint order, i.e. Topo.Cores).
func NewRecorder(endpoints []int) (*Recorder, error) {
	if len(endpoints) < 2 {
		return nil, fmt.Errorf("workload: recorder needs at least 2 endpoints")
	}
	r := &Recorder{
		endpointOf: make(map[int]int, len(endpoints)),
		endpoints:  len(endpoints),
	}
	for i, n := range endpoints {
		r.endpointOf[n] = i
	}
	return r, nil
}

func (r *Recorder) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// PacketInjected implements router.Tracer: every injection becomes one
// trace entry. Packet ids must be dense injection order (every traffic
// source in this repository numbers them that way), so the entry index,
// the entry id and the packet id coincide.
func (r *Recorder) PacketInjected(p *packet.Packet, node int, now int64) {
	if r.err != nil {
		return
	}
	if p.ID != uint64(len(r.entries)) {
		r.fail(fmt.Errorf("workload: recording packet id %d as entry %d: ids must be dense injection order", p.ID, len(r.entries)))
		return
	}
	src, ok := r.endpointOf[node]
	if !ok {
		r.fail(fmt.Errorf("workload: packet %d injected at node %d, which is not a traffic endpoint", p.ID, node))
		return
	}
	dst, ok := r.endpointOf[p.Dst]
	if !ok {
		r.fail(fmt.Errorf("workload: packet %d addressed to node %d, which is not a traffic endpoint", p.ID, p.Dst))
		return
	}
	dep := p.Dep
	if dep < 0 || dep >= int64(p.ID) {
		// Packets predating dependency annotation (or self-referential
		// noise) record as dependency-free.
		dep = packet.NoDep
	}
	r.entries = append(r.entries, Entry{
		ID:    int64(p.ID),
		Cycle: p.CreatedAt,
		Src:   src,
		Dst:   dst,
		Flits: p.Len,
		Msg:   p.MsgID,
		Seq:   p.SeqInMsg,
		Class: p.Class,
		Dep:   dep,
	})
	r.delivered = append(r.delivered, -1)
}

// FlitsMoved implements router.Tracer; hop movements are not workload.
func (r *Recorder) FlitsMoved(p *packet.Packet, from, to, vc, n int, head bool, now int64) {}

// PacketDelivered implements router.Tracer.
func (r *Recorder) PacketDelivered(p *packet.Packet, now int64) {
	if r.err != nil {
		return
	}
	if p.ID >= uint64(len(r.delivered)) {
		r.fail(fmt.Errorf("workload: delivery of unrecorded packet %d", p.ID))
		return
	}
	r.delivered[p.ID] = now
}

// Trace returns the recorded workload, validated. The returned trace
// aliases the recorder's entries; record one run per Recorder.
func (r *Recorder) Trace() (*Trace, error) {
	if r.err != nil {
		return nil, r.err
	}
	t := &Trace{Version: FormatVersion, Endpoints: r.endpoints, Entries: r.entries}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// DeliveryCycles returns the recorded per-entry delivery cycles (-1 for
// packets still in flight when recording stopped) — the ground truth a
// replay of the same trace on the same configuration must reproduce.
func (r *Recorder) DeliveryCycles() []int64 { return r.delivered }

// FromEvents cuts a workload trace from an internal/trace event stream
// (a path-analysis recording that kept inject events): the second way to
// record, for runs that were already being traced for debugging. Only
// inject events contribute entries; the stream must cover every packet
// id densely from 0.
func FromEvents(events []trace.Event, endpoints []int) (*Trace, error) {
	r, err := NewRecorder(endpoints)
	if err != nil {
		return nil, err
	}
	for _, e := range events {
		if e.Kind != trace.Injected {
			continue
		}
		if e.PacketID != uint64(len(r.entries)) {
			return nil, fmt.Errorf("workload: event stream has packet id %d at entry %d: need a dense unfiltered recording", e.PacketID, len(r.entries))
		}
		src, ok := r.endpointOf[e.From]
		if !ok {
			return nil, fmt.Errorf("workload: packet %d injected at node %d, which is not a traffic endpoint", e.PacketID, e.From)
		}
		dst, ok := r.endpointOf[e.Dst]
		if !ok {
			return nil, fmt.Errorf("workload: packet %d addressed to node %d, which is not a traffic endpoint", e.PacketID, e.Dst)
		}
		dep := e.Dep
		if dep < 0 || dep >= int64(e.PacketID) {
			dep = packet.NoDep
		}
		r.entries = append(r.entries, Entry{
			ID:    int64(e.PacketID),
			Cycle: e.Cycle,
			Src:   src,
			Dst:   dst,
			Flits: e.Flits,
			Msg:   e.Msg,
			Seq:   e.Seq,
			Class: e.Class,
			Dep:   dep,
		})
	}
	t := &Trace{Version: FormatVersion, Endpoints: r.endpoints, Entries: r.entries}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}
