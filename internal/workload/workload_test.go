package workload

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"chipletnet/internal/packet"
)

// validTrace is a small well-formed trace exercising every Entry field:
// multi-flit packets, message segmentation, classes, and a dependency.
func validTrace() *Trace {
	return &Trace{
		Version:   FormatVersion,
		Endpoints: 4,
		Entries: []Entry{
			{ID: 0, Cycle: 1, Src: 0, Dst: 1, Flits: 8, Msg: 0, Seq: 0, Class: packet.ClassCollective, Dep: packet.NoDep},
			{ID: 1, Cycle: 1, Src: 0, Dst: 1, Flits: 8, Msg: 0, Seq: 1, Class: packet.ClassCollective, Dep: packet.NoDep},
			{ID: 2, Cycle: 3, Src: 2, Dst: 3, Flits: 4, Msg: 1, Seq: 0, Class: packet.ClassLatency, Dep: packet.NoDep},
			{ID: 3, Cycle: 7, Src: 3, Dst: 2, Flits: 4, Msg: 2, Seq: 0, Class: packet.ClassLatency, Dep: 2},
			{ID: 4, Cycle: 9, Src: 1, Dst: 0, Flits: 16, Msg: 3, Seq: 0, Class: packet.ClassBulk, Dep: packet.NoDep},
		},
	}
}

func TestValidateTable(t *testing.T) {
	mutate := func(fn func(*Trace)) *Trace {
		tr := validTrace()
		fn(tr)
		return tr
	}
	cases := []struct {
		name string
		tr   *Trace
		ok   bool
	}{
		{"valid", validTrace(), true},
		{"empty-entries-ok", &Trace{Version: FormatVersion, Endpoints: 2}, true},
		{"one-endpoint", mutate(func(tr *Trace) { tr.Endpoints = 1 }), false},
		{"sparse-ids", mutate(func(tr *Trace) { tr.Entries[3].ID = 7 }), false},
		{"decreasing-cycles", mutate(func(tr *Trace) { tr.Entries[4].Cycle = 2 }), false},
		{"src-out-of-range", mutate(func(tr *Trace) { tr.Entries[0].Src = 4 }), false},
		{"dst-negative", mutate(func(tr *Trace) { tr.Entries[0].Dst = -1 }), false},
		{"self-send", mutate(func(tr *Trace) { tr.Entries[0].Dst = tr.Entries[0].Src }), false},
		{"zero-flits", mutate(func(tr *Trace) { tr.Entries[2].Flits = 0 }), false},
		{"negative-seq", mutate(func(tr *Trace) { tr.Entries[1].Seq = -1 }), false},
		{"unknown-class", mutate(func(tr *Trace) { tr.Entries[0].Class = packet.NumClasses }), false},
		{"self-dep", mutate(func(tr *Trace) { tr.Entries[3].Dep = 3 }), false},
		{"forward-dep", mutate(func(tr *Trace) { tr.Entries[3].Dep = 4 }), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.tr.Validate()
			if tc.ok && err != nil {
				t.Fatalf("valid trace rejected: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("invalid trace accepted")
				}
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("got %v, want ErrCorrupt", err)
				}
			}
		})
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := validTrace()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()
	got, err := Decode(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip changed the trace:\n in: %+v\nout: %+v", tr, got)
	}
	// Byte-deterministic: re-encoding the decoded trace reproduces the file.
	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != first {
		t.Error("encoding is not byte-deterministic")
	}
}

func TestWriteReadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	tr := validTrace()
	if err := WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Error("file round trip changed the trace")
	}
	// WriteFile refuses an invalid trace and leaves nothing behind.
	bad := validTrace()
	bad.Entries[0].Flits = 0
	badPath := filepath.Join(t.TempDir(), "bad.trace")
	if err := WriteFile(badPath, bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
	if _, err := os.Stat(badPath); !errors.Is(err, os.ErrNotExist) {
		t.Error("invalid trace left a file behind")
	}
}

// TestDecodeTypedErrors maps every damage shape to its typed error; none
// may panic.
func TestDecodeTypedErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := validTrace().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.String()
	lines := strings.SplitAfter(strings.TrimSuffix(whole, "\n"), "\n")

	cases := []struct {
		name string
		data string
		want error
	}{
		{"empty", "", ErrNotTrace},
		{"garbage", "not json at all\n", ErrNotTrace},
		{"wrong-magic", `{"format":"something-else","version":1}` + "\n", ErrNotTrace},
		{"future-version", `{"format":"chipletnet-trace","version":99,"endpoints":4,"entries":0}` + "\n", ErrVersion},
		{"negative-count", `{"format":"chipletnet-trace","version":1,"endpoints":4,"entries":-1}` + "\n", ErrCorrupt},
		{"missing-tail", strings.Join(lines[:len(lines)-1], ""), ErrTruncated},
		{"torn-final-line", strings.Join(lines[:len(lines)-1], "") + lines[len(lines)-1][:5] + "\n", ErrTruncated},
		{"extra-lines", whole + lines[1], ErrCorrupt},
		{"interior-damage", lines[0] + "{{{\n" + strings.Join(lines[2:], ""), ErrCorrupt},
		{"invariant-violation", strings.Replace(whole, `"f":8`, `"f":0`, 1), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(strings.NewReader(tc.data))
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}
}

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestImport(t *testing.T) {
	// Out-of-order cycles, sparse external ids, a dependency, a named
	// class, and one damaged line to quarantine.
	path := writeTemp(t, "ext.jsonl", strings.Join([]string{
		`{"id":10,"cycle":5,"src":0,"dst":1,"flits":4,"class":"latency"}`,
		`{"id":20,"cycle":2,"src":1,"dst":2,"flits":8}`,
		`this line is damage`,
		`{"id":30,"cycle":9,"src":2,"dst":0,"flits":4,"class":"latency","dep":10}`,
	}, "\n")+"\n")
	tr, quarantined, err := Import(path, 3)
	if err != nil {
		t.Fatal(err)
	}
	if quarantined != 1 {
		t.Errorf("quarantined %d lines, want 1", quarantined)
	}
	if len(tr.Entries) != 3 {
		t.Fatalf("imported %d entries, want 3", len(tr.Entries))
	}
	// Sorted by cycle and densely renumbered: id 20 (cycle 2) first.
	if tr.Entries[0].Cycle != 2 || tr.Entries[0].Src != 1 {
		t.Errorf("entry 0 = %+v, want the cycle-2 record", tr.Entries[0])
	}
	if tr.Entries[0].Class != packet.ClassBestEffort {
		t.Errorf("classless record imported as class %d", tr.Entries[0].Class)
	}
	if tr.Entries[1].Class != packet.ClassLatency {
		t.Errorf("latency record imported as class %d", tr.Entries[1].Class)
	}
	// The dependency on external id 10 remaps to the new dense id 1.
	if tr.Entries[2].Dep != 1 {
		t.Errorf("dependency remapped to %d, want 1", tr.Entries[2].Dep)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("imported trace invalid: %v", err)
	}
}

func TestImportErrors(t *testing.T) {
	cases := []struct {
		name, content string
	}{
		{"dep-on-quarantined", `{"id":1,"cycle":0,"src":0,"dst":1,"flits":1}` + "\n" +
			"damage\n" +
			`{"id":3,"cycle":1,"src":0,"dst":1,"flits":1,"dep":2}` + "\n"},
		{"dep-not-earlier", `{"id":1,"cycle":5,"src":0,"dst":1,"flits":1,"dep":2}` + "\n" +
			`{"id":2,"cycle":5,"src":1,"dst":0,"flits":1}` + "\n"},
		{"duplicate-ids", `{"id":1,"cycle":0,"src":0,"dst":1,"flits":1}` + "\n" +
			`{"id":1,"cycle":1,"src":1,"dst":0,"flits":1}` + "\n"},
		{"all-quarantined", "damage\nmore damage\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTemp(t, "bad.jsonl", tc.content)
			if _, _, err := Import(path, 2); err == nil {
				t.Fatal("bad external trace imported")
			}
		})
	}
	// Records with bad endpoints or unknown classes are quarantined, not
	// fatal: the rest of the trace still loads.
	path := writeTemp(t, "mixed.jsonl", strings.Join([]string{
		`{"id":1,"cycle":0,"src":0,"dst":9,"flits":1}`,
		`{"id":2,"cycle":0,"src":0,"dst":1,"flits":1,"class":"warp-speed"}`,
		`{"id":3,"cycle":1,"src":0,"dst":1,"flits":1}`,
	}, "\n")+"\n")
	tr, quarantined, err := Import(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if quarantined != 2 || len(tr.Entries) != 1 {
		t.Errorf("quarantined=%d entries=%d, want 2 and 1", quarantined, len(tr.Entries))
	}
}

func TestRecorder(t *testing.T) {
	rec, err := NewRecorder([]int{5, 9, 13})
	if err != nil {
		t.Fatal(err)
	}
	inject := func(id uint64, src, dst int, cycle int64, class uint8, dep int64) {
		rec.PacketInjected(&packet.Packet{
			ID: id, Src: src, Dst: dst, Len: 4, CreatedAt: cycle, Class: class, Dep: dep,
		}, src, cycle)
	}
	inject(0, 5, 9, 1, packet.ClassBulk, packet.NoDep)
	inject(1, 9, 13, 2, packet.ClassLatency, 0)
	inject(2, 13, 5, 4, packet.ClassLatency, 99) // forward dep: clamped to NoDep
	rec.PacketDelivered(&packet.Packet{ID: 0}, 10)
	rec.PacketDelivered(&packet.Packet{ID: 1}, 12)

	tr, err := rec.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Endpoints != 3 || len(tr.Entries) != 3 {
		t.Fatalf("trace shape %d endpoints %d entries", tr.Endpoints, len(tr.Entries))
	}
	// Global node ids map to dense endpoint indices.
	if e := tr.Entries[0]; e.Src != 0 || e.Dst != 1 {
		t.Errorf("entry 0 endpoints %d->%d, want 0->1", e.Src, e.Dst)
	}
	if tr.Entries[1].Dep != 0 {
		t.Errorf("entry 1 dep %d, want 0", tr.Entries[1].Dep)
	}
	if tr.Entries[2].Dep != packet.NoDep {
		t.Errorf("forward dependency recorded as %d, want NoDep", tr.Entries[2].Dep)
	}
	if got := rec.DeliveryCycles(); got[0] != 10 || got[1] != 12 || got[2] != -1 {
		t.Errorf("delivery cycles %v, want [10 12 -1]", got)
	}
}

func TestRecorderStickyErrors(t *testing.T) {
	rec, _ := NewRecorder([]int{0, 1})
	// Non-dense packet ids are an error, surfaced at Trace().
	rec.PacketInjected(&packet.Packet{ID: 7, Src: 0, Dst: 1, Len: 1}, 0, 1)
	if _, err := rec.Trace(); err == nil {
		t.Error("non-dense packet id accepted")
	}
	rec2, _ := NewRecorder([]int{0, 1})
	// Injection at a node that is not an endpoint is an error.
	rec2.PacketInjected(&packet.Packet{ID: 0, Src: 3, Dst: 1, Len: 1}, 3, 1)
	if _, err := rec2.Trace(); err == nil {
		t.Error("non-endpoint injection accepted")
	}
}

func TestSplit(t *testing.T) {
	if k, a, err := Split(""); k != "" || a != "" || err != nil {
		t.Errorf("empty spec: %q %q %v", k, a, err)
	}
	if k, a, err := Split("replay:/tmp/x.trace"); k != KindReplay || a != "/tmp/x.trace" || err != nil {
		t.Errorf("replay spec: %q %q %v", k, a, err)
	}
	if k, _, err := Split("aiscaleout:allreduce-ring,data=64"); k != KindAIScaleOut || err != nil {
		t.Errorf("aiscaleout spec: %q %v", k, err)
	}
	for _, bad := range []string{"replay:", "record:/x", "nonsense", "wormhole:/x", "aiscaleout:data=64"} {
		if _, _, err := Split(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}

func TestParseFlag(t *testing.T) {
	spec, rec, err := ParseFlag("aiscaleout:alltoall,data=64;record:/tmp/t.trace")
	if err != nil || spec != "aiscaleout:alltoall,data=64" || rec != "/tmp/t.trace" {
		t.Errorf("combined flag: %q %q %v", spec, rec, err)
	}
	spec, rec, err = ParseFlag("record:/tmp/t.trace")
	if err != nil || spec != "" || rec != "/tmp/t.trace" {
		t.Errorf("record-only flag: %q %q %v", spec, rec, err)
	}
	for _, bad := range []string{
		"record:",
		"record:/a;record:/b",
		"replay:/a;aiscaleout:alltoall",
	} {
		if _, _, err := ParseFlag(bad); err == nil {
			t.Errorf("bad flag %q accepted", bad)
		}
	}
}

func TestParseAIScaleOut(t *testing.T) {
	spec, err := ParseAIScaleOut("allreduce-ring,data=512,compute=300,phases=2,memrate=0.1,reqrate=0.02,reqflits=8")
	if err != nil {
		t.Fatal(err)
	}
	want := AIScaleOutSpec{
		Collective: "allreduce-ring", DataFlits: 512, ComputeCycles: 300,
		Phases: 2, MemRate: 0.1, ReqRate: 0.02, ReqFlits: 8,
	}
	if spec != want {
		t.Errorf("parsed %+v, want %+v", spec, want)
	}
	// Defaults apply when options are omitted.
	spec, err = ParseAIScaleOut("alltoall")
	if err != nil {
		t.Fatal(err)
	}
	if spec.DataFlits != 256 || spec.ComputeCycles != 200 || spec.MemRate != 0.05 || spec.ReqFlits != 4 {
		t.Errorf("defaults: %+v", spec)
	}
	for _, bad := range []string{"", "data=64", "alltoall,data=0", "alltoall,data", "alltoall,memrate=-1", "alltoall,warp=9"} {
		if _, err := ParseAIScaleOut(bad); err == nil {
			t.Errorf("bad spec %q accepted", bad)
		}
	}
}

func TestSpecHash(t *testing.T) {
	if h, err := SpecHash(""); h != "" || err != nil {
		t.Errorf("empty spec hash %q %v", h, err)
	}
	// Self-contained specs are their own address.
	const ai = "aiscaleout:allreduce-ring,data=64"
	if h, _ := SpecHash(ai); h != ai {
		t.Errorf("aiscaleout hash %q", h)
	}
	// Replay specs are content-addressed: same bytes at two paths hash
	// equal; different bytes hash differently; edits invalidate the memo.
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.trace"), filepath.Join(dir, "b.trace")
	if err := WriteFile(a, validTrace()); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(b, validTrace()); err != nil {
		t.Fatal(err)
	}
	ha, err := SpecHash("replay:" + a)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := SpecHash("replay:" + b)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Error("identical trace bytes at two paths hashed differently")
	}
	if !strings.HasPrefix(ha, "replay:sha256:") {
		t.Errorf("replay hash %q lacks the content-address prefix", ha)
	}
	other := validTrace()
	other.Entries = other.Entries[:3]
	if err := WriteFile(b, other); err != nil {
		t.Fatal(err)
	}
	hb2, err := SpecHash("replay:" + b)
	if err != nil {
		t.Fatal(err)
	}
	if hb2 == hb {
		t.Error("editing the trace did not change its hash")
	}
	if _, err := SpecHash("replay:" + filepath.Join(dir, "missing.trace")); err == nil {
		t.Error("missing trace file hashed")
	}
}
