package workload

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Workload spec kinds (the prefix of a Config.Workload value).
const (
	// KindReplay replays a native trace file: "replay:<path>".
	KindReplay = "replay"
	// KindAIScaleOut runs the AI-scale-out generator: "aiscaleout:<spec>".
	KindAIScaleOut = "aiscaleout"
	// KindRecord is a flag-only directive ("record:<path>"): it selects
	// no injection process, it asks the run to be recorded. Never stored
	// in Config.Workload.
	KindRecord = "record"
)

// Split splits a Config.Workload value into kind and argument. The empty
// spec (the synthetic Bernoulli process) splits to ("", "").
func Split(spec string) (kind, arg string, err error) {
	if spec == "" {
		return "", "", nil
	}
	i := strings.IndexByte(spec, ':')
	if i < 0 {
		return "", "", fmt.Errorf("workload: bad spec %q: want replay:<path> or aiscaleout:<spec>", spec)
	}
	kind, arg = spec[:i], spec[i+1:]
	switch kind {
	case KindReplay:
		if arg == "" {
			return "", "", fmt.Errorf("workload: replay spec needs a trace path")
		}
	case KindAIScaleOut:
		if _, err := ParseAIScaleOut(arg); err != nil {
			return "", "", err
		}
	case KindRecord:
		return "", "", fmt.Errorf("workload: record:<path> is a flag directive, not a workload (combine as \"<workload>;record:<path>\")")
	default:
		return "", "", fmt.Errorf("workload: unknown workload kind %q (want replay or aiscaleout)", kind)
	}
	return kind, arg, nil
}

// ParseFlag parses a -workload flag value into the Config.Workload spec
// and an optional trace-record path. Accepted forms:
//
//	record:<path>                     record the configured synthetic run
//	replay:<path>                     replay a native trace
//	aiscaleout:<spec>                 run the AI-scale-out generator
//	<workload>;record:<path>          run a workload and record it
func ParseFlag(s string) (spec, recordPath string, err error) {
	if s == "" {
		return "", "", nil
	}
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if p, ok := strings.CutPrefix(part, KindRecord+":"); ok {
			if p == "" {
				return "", "", fmt.Errorf("workload: record directive needs a path")
			}
			if recordPath != "" {
				return "", "", fmt.Errorf("workload: multiple record directives in %q", s)
			}
			recordPath = p
			continue
		}
		if spec != "" {
			return "", "", fmt.Errorf("workload: multiple workloads in %q", s)
		}
		if _, _, err := Split(part); err != nil {
			return "", "", err
		}
		spec = part
	}
	return spec, recordPath, nil
}

// AIScaleOutSpec parameterizes the AI-scale-out generator: repeated
// collective phases separated by compute gaps, over a background of
// bulk memory traffic and latency-class request/response pairs, each
// class under its own injection budget.
type AIScaleOutSpec struct {
	// Collective is the phase's collective kind (a CollectiveKinds name).
	Collective string
	// DataFlits is the collective's per-node payload.
	DataFlits int
	// ComputeCycles is the gap between a phase's completion and the next
	// phase's start (the compute the collective synchronized).
	ComputeCycles int64
	// Phases bounds the number of collective phases (0 = repeat for the
	// whole run).
	Phases int
	// MemRate is the bulk-class background budget in flits/node/cycle.
	MemRate float64
	// ReqRate is the latency-class request budget in flits/node/cycle;
	// every delivered request triggers a dependent response.
	ReqRate float64
	// ReqFlits is the request/response packet length.
	ReqFlits int
}

// ParseAIScaleOut parses an aiscaleout spec argument:
//
//	<collective>[,data=N][,compute=N][,phases=N][,memrate=F][,reqrate=F][,reqflits=N]
//
// e.g. "allreduce-ring,data=512,compute=300,memrate=0.05,reqrate=0.02".
// The collective kind is validated by the caller (the kind registry
// lives in the root package).
func ParseAIScaleOut(arg string) (AIScaleOutSpec, error) {
	spec := AIScaleOutSpec{
		DataFlits:     256,
		ComputeCycles: 200,
		MemRate:       0.05,
		ReqFlits:      4,
	}
	parts := strings.Split(arg, ",")
	if parts[0] == "" || strings.Contains(parts[0], "=") {
		return spec, fmt.Errorf("workload: aiscaleout spec %q must start with a collective kind", arg)
	}
	spec.Collective = parts[0]
	for _, kv := range parts[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return spec, fmt.Errorf("workload: bad aiscaleout option %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "data":
			spec.DataFlits, err = parsePosInt(v)
		case "compute":
			var n int
			if n, err = parseNonNegInt(v); err == nil {
				spec.ComputeCycles = int64(n)
			}
		case "phases":
			spec.Phases, err = parseNonNegInt(v)
		case "memrate":
			spec.MemRate, err = parseRate(v)
		case "reqrate":
			spec.ReqRate, err = parseRate(v)
		case "reqflits":
			spec.ReqFlits, err = parsePosInt(v)
		default:
			return spec, fmt.Errorf("workload: unknown aiscaleout option %q", k)
		}
		if err != nil {
			return spec, fmt.Errorf("workload: aiscaleout option %s: %w", k, err)
		}
	}
	return spec, nil
}

func parsePosInt(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("want a positive integer, got %q", s)
	}
	return n, nil
}

func parseNonNegInt(s string) (int, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("want a non-negative integer, got %q", s)
	}
	return n, nil
}

func parseRate(s string) (float64, error) {
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("want a non-negative rate, got %q", s)
	}
	return f, nil
}

// hashMemo caches trace-file content hashes keyed by (path, size, mtime)
// so a DSE enumeration hashing the same trace for hundreds of cache keys
// reads the file once.
var hashMemo sync.Map // string(path) -> hashMemoEntry

type hashMemoEntry struct {
	size  int64
	mtime int64
	hash  string
}

// SpecHash returns the content address of a workload spec, the component
// DSE cache keys incorporate. The empty spec (synthetic traffic) hashes
// to "" so pre-QoS cache keys stay valid; a self-contained spec
// (aiscaleout) is its own address; a replay spec resolves to the SHA-256
// of the trace file's bytes, so editing a trace invalidates every cached
// evaluation that used it.
func SpecHash(spec string) (string, error) {
	kind, arg, err := Split(spec)
	if err != nil {
		return "", err
	}
	if kind != KindReplay {
		return spec, nil
	}
	info, err := os.Stat(arg)
	if err != nil {
		return "", fmt.Errorf("workload: hashing replay trace: %w", err)
	}
	if e, ok := hashMemo.Load(arg); ok {
		if m := e.(hashMemoEntry); m.size == info.Size() && m.mtime == info.ModTime().UnixNano() {
			return m.hash, nil
		}
	}
	f, err := os.Open(arg)
	if err != nil {
		return "", fmt.Errorf("workload: hashing replay trace: %w", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", fmt.Errorf("workload: hashing replay trace: %w", err)
	}
	hash := fmt.Sprintf("replay:sha256:%x", h.Sum(nil))
	hashMemo.Store(arg, hashMemoEntry{size: info.Size(), mtime: info.ModTime().UnixNano(), hash: hash})
	return hash, nil
}
