// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis framework: the Analyzer / Pass /
// Diagnostic vocabulary, plus a purely syntactic driver (Run) that loads
// packages from ./... patterns with go/parser. The repository vendors no
// third-party modules, so cmd/chipletlint's analyzers are written against
// this shim; each analyzer is a self-contained unit that ports to the
// upstream framework by swapping the import path and registering with
// multichecker.
//
// Deliberate differences from upstream: packages are loaded syntactically
// (no type information, so analyzers must reason from the AST alone, which
// is all the determinism rules need), test files are included in
// Pass.Files (analyzers that exempt tests check the file name), and the
// driver returns resolved findings instead of printing them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// Analyzer describes one analysis: its stable name (used as the finding
// category), a doc string stating what it reports, and the Run function
// applied once per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (interface{}, error)
}

// Pass carries one analyzer's view of one package to its Run function.
type Pass struct {
	// Analyzer is the analysis being run.
	Analyzer *Analyzer
	// Fset resolves token positions for every file of the pass.
	Fset *token.FileSet
	// Files holds the package's parsed syntax trees, test files included,
	// in file-name order.
	Files []*ast.File
	// Dir is the slash-separated package directory relative to the
	// working directory ("." for the root package).
	Dir string
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Filename returns the name of the file containing pos, relative to the
// working directory as loaded.
func (p *Pass) Filename(pos token.Pos) string {
	return p.Fset.Position(pos).Filename
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}
