package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one resolved diagnostic: the position mapped through the
// file set, the reporting analyzer's name, and the message.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string { return fmt.Sprintf("%s: %s", f.Pos, f.Message) }

// Run loads every package matched by the patterns (a directory, or
// dir/... for a recursive walk; hidden, underscore and testdata
// directories are skipped) and applies each analyzer to each package.
// Findings come back in deterministic (file name, offset) order. A parse
// failure or an analyzer error aborts the run.
func Run(patterns []string, analyzers []*Analyzer) ([]Finding, error) {
	dirs, err := resolveDirs(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []Finding
	for _, dir := range dirs {
		files, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Files:    files,
				Dir:      filepath.ToSlash(dir),
			}
			pass.Report = func(d Diagnostic) {
				out = append(out, Finding{Pos: fset.Position(d.Pos), Analyzer: pass.Analyzer.Name, Message: d.Message})
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, dir, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Offset < out[j].Pos.Offset
	})
	return out, nil
}

// parseDir parses the .go files directly in dir, in name order (os.ReadDir
// sorts), without type checking.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// resolveDirs expands the patterns into the directories containing Go
// files, deduplicated and sorted.
func resolveDirs(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			out = append(out, dir)
		}
	}
	for _, p := range patterns {
		root, recursive := p, false
		if strings.HasSuffix(p, "/...") {
			root, recursive = strings.TrimSuffix(p, "/..."), true
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}
