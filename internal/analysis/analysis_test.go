package analysis_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"chipletnet/internal/analysis"
)

// writeTree lays out a throwaway source tree and returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// funcCounter reports every function declaration it sees, prefixed with
// the package directory — enough surface to exercise Pass wiring, Reportf
// and the driver's ordering guarantees.
var funcCounter = &analysis.Analyzer{
	Name: "funccounter",
	Doc:  "reports every function declaration (test analyzer)",
	Run: func(pass *analysis.Pass) (interface{}, error) {
		for _, file := range pass.Files {
			for _, decl := range file.Decls {
				if fn, ok := decl.(*ast.FuncDecl); ok {
					pass.Reportf(fn.Pos(), "func %s in %s", fn.Name.Name, pass.Dir)
				}
			}
		}
		return nil, nil
	},
}

func TestDriverRunsAnalyzersOverTree(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go":             "package a\n\nfunc A() {}\n",
		"a/a_test.go":        "package a\n\nfunc TestA() {}\n",
		"b/b.go":             "package b\n\nfunc B1() {}\n\nfunc B2() {}\n",
		"b/testdata/skip.go": "package skip\n\nfunc Hidden() {}\n",
		".hidden/h.go":       "package h\n\nfunc Hidden() {}\n",
		"README.md":          "not go\n",
	})
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	findings, err := analysis.Run([]string{"./..."}, []*analysis.Analyzer{funcCounter})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range findings {
		got = append(got, f.Message)
		if f.Analyzer != "funccounter" {
			t.Errorf("finding attributed to %q", f.Analyzer)
		}
	}
	want := []string{"func A in a", "func TestA in a", "func B1 in b", "func B2 in b"}
	sort.Strings(got)
	sort.Strings(want)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("findings %v, want %v (testdata and hidden dirs skipped, tests included)", got, want)
	}
}

func TestDriverDeterministicOrder(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/z.go": "package p\n\nfunc Z() {}\n",
		"p/a.go": "package p\n\nfunc A1() {}\n\nfunc A2() {}\n",
	})
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	var prev []string
	for i := 0; i < 3; i++ {
		findings, err := analysis.Run([]string{"p"}, []*analysis.Analyzer{funcCounter})
		if err != nil {
			t.Fatal(err)
		}
		var msgs []string
		for j, f := range findings {
			msgs = append(msgs, f.String())
			if j > 0 {
				p, q := findings[j-1].Pos, f.Pos
				if p.Filename > q.Filename || (p.Filename == q.Filename && p.Offset > q.Offset) {
					t.Errorf("findings out of order: %v before %v", findings[j-1], f)
				}
			}
		}
		if prev != nil && strings.Join(prev, ";") != strings.Join(msgs, ";") {
			t.Errorf("run %d differs: %v vs %v", i, prev, msgs)
		}
		prev = msgs
	}
}

func TestDriverParseErrorAborts(t *testing.T) {
	root := writeTree(t, map[string]string{
		"p/bad.go": "package p\n\nfunc {\n",
	})
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(root); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	if _, err := analysis.Run([]string{"p"}, []*analysis.Analyzer{funcCounter}); err == nil {
		t.Error("parse error not surfaced")
	}
}
