// Package verify is the static routing certifier: one exhaustive traversal
// of the (node, destination, tag) state space that proves, before a single
// cycle is simulated, that the routing function installed on a built
// system is deadlock-free, totally reachable, livelock-free and
// VC-disciplined — and that, from the same traversal, feeds the compiled
// per-router routing tables of internal/routing.
//
// The deadlock obligation implements Duato's criterion for virtual
// cut-through switching: a routing function is deadlock-free if its escape
// sub-network C1 — the channels supplied by the escape function — has an
// acyclic extended channel dependency graph. "Extended" means the
// dependency c -> c' is recorded whenever any packet can occupy c (however
// it got there, including via adaptive hops) and its escape function
// supplies c' next; under virtual cut-through a packet holds exactly one
// buffer while requesting the next, so only these direct dependencies
// matter.
//
// The analyzer enumerates routing behavior exhaustively per (destination,
// interleave tag) round in two global passes over all rounds. Tags are
// reduced to equivalence classes first: every tag use in the routing layer
// goes through interleave.Index (tag modulo the group membership size, with
// the core-reachability rule shrinking the modulus by one), so TagClasses
// rounds cover every distinguishable behavior exactly.
//
//  1. a link-level BFS from every injection point over the routing
//     function's candidate sets discovers the reachable states; the escape
//     step of each reachable state contributes its target channel to C1.
//     The same pass checks full reachability (every source reaches the
//     destination in the candidate graph), escape completeness,
//     termination and VC monotonicity of the escape walks (Duato mode),
//     livelock freedom (the adaptive candidate sub-graph of each round
//     must be acyclic, yielding a certified adaptive hop bound), dead-end
//     states, and VC-range discipline. When Options.Sink is set, every
//     visited state's raw candidate set is also streamed out — this is how
//     routing.Compile obtains certified tables from the same traversal.
//  2. dependency edges are emitted against the now-complete C1. Under
//     Duato's protocol the extended rule applies: the BFS re-runs, and
//     every candidate channel that lies in C1 can be occupied and depends
//     on the occupant's next escape channel at the far node. Under the
//     safe/unsafe flow control the escape network is not a reserved
//     resource class, so the analysis certifies the minus-first structure
//     itself (Theorem 1's object, which Definition 4's safety argument
//     relies on): edges chain the consecutive channels of each pure
//     minus-first walk from an injection core to the destination.
//
// Injection channels belong to C1 but no link channel ever feeds them, so
// they cannot participate in a cycle and are left out of the graph.
//
// The verdict is a structured Report carrying concrete witnesses (in
// deterministic sorted order) when any proof obligation fails, and an
// exportable content-addressable Certificate when all of them hold.
package verify

import (
	"fmt"
	"sort"

	"chipletnet/internal/packet"
	"chipletnet/internal/router"
	"chipletnet/internal/topology"
)

// EscapeAnalyzer is the interface a routing implementation must expose, on
// top of router.Routing, to be statically analyzable. Both routing
// families in internal/routing (MFR and the flat-mesh NFR baseline)
// implement it.
type EscapeAnalyzer interface {
	router.Routing
	// EscapeStep returns the escape next hop and VC for packet p at node
	// v, or ok=false from states with no escape continuation. It must be
	// side-effect free and must not panic on reachable states.
	EscapeStep(v int, p *packet.Packet) (next, vc int, ok bool)
	// EscapeRequired reports whether deadlock freedom relies on the
	// escape sub-network (Duato's protocol) rather than on flow control.
	EscapeRequired() bool
}

// RawCandidater exposes a routing function's candidate set before any
// credit-based runtime reordering: the same candidates router.Routing's
// Candidates yields, in generation order, plus the count of leading
// candidates the lookup reorders by live credit score. A routing
// implementation must expose it for its tables to be compilable
// (routing.Compile): the stored set plus the re-sortable prefix length is
// exactly what reproduces Candidates bit-for-bit at lookup time.
type RawCandidater interface {
	RawCandidates(r *router.Router, p *packet.Packet, buf []router.Candidate) ([]router.Candidate, int)
}

// StateSink receives every routing state the certifying traversal visits:
// node holds a packet for destination dst with interleave-tag class tag
// (in [0, TagClasses)), and the routing function offers the raw candidate
// set cands of which the first nsort are credit-sortable. The cands slice
// is reused across calls — implementations must copy what they keep.
// Ejection states (node == dst) are not streamed.
type StateSink interface {
	State(node, dst, tag int, cands []router.Candidate, nsort int)
}

// Options tunes analysis cost. The zero value analyzes everything.
type Options struct {
	// MaxDests bounds the analyzed destination cores (0 = all).
	// Destinations are sampled evenly across the core list, preserving
	// chiplet coverage.
	MaxDests int
	// MaxSources bounds the escape-walk sources per destination (0 =
	// all). Candidate-graph reachability always covers every source.
	MaxSources int
	// MaxWitnesses caps recorded findings per category (default 8).
	MaxWitnesses int
	// Sink, when non-nil, receives every visited routing state with its
	// raw candidate set (see StateSink). Requires the routing to implement
	// RawCandidater; the analysis reports Unsupported otherwise. Combine
	// with zero MaxDests/MaxSources for complete tables.
	Sink StateSink
}

// Run statically analyzes the routing installed on sys.Fabric and returns
// the structured verdict. The system must be built but not yet simulated;
// the analysis only reads routing state and does not mutate the fabric.
// Panics escaping the routing function are recovered into Report.Panic.
func Run(sys *topology.System, opt Options) (rep *Report) {
	rep = &Report{Topology: sys.Kind.String()}
	if opt.MaxWitnesses <= 0 {
		opt.MaxWitnesses = 8
	}
	defer func() {
		if p := recover(); p != nil {
			rep.Panic = fmt.Sprint(p)
		}
	}()
	if sys.Fabric == nil || sys.Fabric.Routing == nil {
		rep.Unsupported = "system has no routing installed (build it first)"
		return rep
	}
	rt, ok := sys.Fabric.Routing.(EscapeAnalyzer)
	if !ok {
		rep.Unsupported = fmt.Sprintf("routing %T does not expose EscapeStep for static analysis", sys.Fabric.Routing)
		return rep
	}
	raw, _ := sys.Fabric.Routing.(RawCandidater)
	if opt.Sink != nil && raw == nil {
		rep.Unsupported = fmt.Sprintf("routing %T does not expose RawCandidates for table compilation", sys.Fabric.Routing)
		return rep
	}
	a := &analyzer{
		sys:     sys,
		rt:      rt,
		raw:     raw,
		opt:     opt,
		rep:     rep,
		routers: make([]*router.Router, len(sys.Nodes)),
		dests:   sampleInts(sys.Cores, opt.MaxDests),
		sources: sampleInts(sys.Cores, opt.MaxSources),
		tags:    tagSet(sys),
		c1:      make(map[Channel]bool),
		adj:     make(map[Channel][]Channel),
		seen:    make(map[[2]Channel]bool),
		info:    make(map[[2]Channel][2]int),
	}
	for _, r := range sys.Fabric.Routers {
		a.routers[r.Node] = r
	}
	rep.EscapeRequired = rt.EscapeRequired()
	rep.Dests, rep.Tags = len(a.dests), len(a.tags)

	// Pass 1: reachable states, C1, reachability and discipline checks.
	for _, dst := range a.dests {
		for _, tag := range a.tags {
			a.round(dst, tag, false)
		}
	}
	// Pass 2: dependency edges against the now-complete C1.
	for _, dst := range a.dests {
		for _, tag := range a.tags {
			if rep.EscapeRequired {
				a.round(dst, tag, true)
			} else {
				a.emitWalkDeps(dst, tag)
			}
		}
	}
	rep.EscapeChannels = len(a.c1)
	rep.DepEdges = len(a.seen)
	a.findCycle()
	a.finalize()
	return rep
}

type analyzer struct {
	sys     *topology.System
	rt      EscapeAnalyzer
	raw     RawCandidater // nil when the routing has no raw accessor
	opt     Options
	rep     *Report
	routers []*router.Router // indexed by global node id

	dests, sources, tags []int

	// c1 is the escape sub-network: every channel some escape step targets.
	c1 map[Channel]bool
	// adj is the CDG adjacency; order keeps its keys in first-insertion
	// order so cycle detection is deterministic.
	adj   map[Channel][]Channel
	order []Channel
	seen  map[[2]Channel]bool
	info  map[[2]Channel][2]int // edge -> first inducing (dst, tag)

	// per-round scratch
	visited []bool
	mark    []bool
	radj    [][]int // reverse candidate adjacency (reachability)
	aadj    [][]int // forward adaptive-only adjacency (livelock)
	acolor  []int8
	adepth  []int32
	cands   []router.Candidate
}

// round runs one (destination, tag) analysis round: a BFS over the
// candidate graph from every injection point. With emit=false it grows C1
// and runs the per-round checks; with emit=true it emits CDG edges.
func (a *analyzer) round(dst, tag int, emit bool) {
	p := &packet.Packet{Src: -1, Dst: dst, Tag: tag, Len: 1}
	n := len(a.sys.Nodes)
	if a.visited == nil {
		a.visited = make([]bool, n)
		a.mark = make([]bool, n)
		a.radj = make([][]int, n)
		a.aadj = make([][]int, n)
		a.acolor = make([]int8, n)
		a.adepth = make([]int32, n)
	}
	for i := 0; i < n; i++ {
		a.visited[i] = false
		a.radj[i] = a.radj[i][:0]
		a.aadj[i] = a.aadj[i][:0]
	}
	queue := make([]int, 0, n)
	for _, src := range a.sys.Cores {
		if !a.visited[src] {
			a.visited[src] = true
			queue = append(queue, src)
		}
	}
	vcs := a.sys.LP.VCs
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		if v == dst {
			continue // delivered: no further channel requests
		}
		r := a.routers[v]
		nsort := 0
		if a.raw != nil {
			a.cands, nsort = a.raw.RawCandidates(r, p, a.cands[:0])
		} else {
			a.cands = a.rt.Candidates(r, 0, p, a.cands[:0])
		}
		if len(a.cands) == 0 {
			if !emit {
				a.addDeadEnd(StateRef{v, dst, tag})
			}
			continue
		}
		if !emit {
			a.rep.States++
			if a.opt.Sink != nil {
				a.opt.Sink.State(v, dst, tag, a.cands, nsort)
			}
			enext, evc, eok := a.rt.EscapeStep(v, p)
			if eok {
				if evc < 0 || evc >= vcs {
					a.addVCViolation(fmt.Sprintf("escape VC %d outside [0,%d) at %v",
						evc, vcs, StateRef{v, dst, tag}))
				} else {
					a.c1[Channel{v, enext, evc}] = true
				}
			} else if a.rep.EscapeRequired {
				a.addMissingEscape(StateRef{v, dst, tag})
			}
		}
		for _, c := range a.cands {
			o := r.Out[c.Port]
			if o.Link == nil {
				if !emit {
					a.addVCViolation(fmt.Sprintf("ejection candidate away from destination at %v",
						StateRef{v, dst, tag}))
				}
				continue
			}
			to := o.Link.Dst.Node
			mask := c.VCMask
			if excess := mask &^ router.VCMaskAll(len(o.Credits)); excess != 0 {
				if !emit {
					a.addVCViolation(fmt.Sprintf("candidate VC mask %#x exceeds the %d downstream VCs at %v",
						c.VCMask, len(o.Credits), StateRef{v, dst, tag}))
				}
				mask &= router.VCMaskAll(len(o.Credits))
			}
			if emit && a.rep.EscapeRequired && to != dst {
				// Extended CDG: the packet can occupy any candidate
				// channel; from an escape channel its next request is
				// its escape continuation at the far node.
				if nn, nvc, ok := a.rt.EscapeStep(to, p); ok && nvc >= 0 && nvc < vcs {
					tgt := Channel{to, nn, nvc}
					for vc := 0; vc < len(o.Credits); vc++ {
						if mask&(1<<uint(vc)) == 0 {
							continue
						}
						if ch := (Channel{v, to, vc}); a.c1[ch] {
							a.addDep(ch, tgt, dst, tag)
						}
					}
				}
			}
			if !emit {
				a.radj[to] = append(a.radj[to], v)
				if !c.Escape {
					a.aadj[v] = append(a.aadj[v], to)
				}
			}
			if !a.visited[to] {
				a.visited[to] = true
				queue = append(queue, to)
			}
		}
	}
	if emit {
		return
	}
	a.checkReach(dst, tag)
	a.checkLivelock(dst, tag)
	if a.rep.EscapeRequired {
		a.checkEscapeWalk(dst, tag, p)
	}
}

// checkReach verifies every core can reach dst in the candidate graph, via
// a reverse BFS from dst over the reverse adjacency the round recorded.
func (a *analyzer) checkReach(dst, tag int) {
	n := len(a.sys.Nodes)
	for i := 0; i < n; i++ {
		a.mark[i] = false
	}
	a.mark[dst] = true
	queue := make([]int, 0, n)
	queue = append(queue, dst)
	for head := 0; head < len(queue); head++ {
		for _, u := range a.radj[queue[head]] {
			if !a.mark[u] {
				a.mark[u] = true
				queue = append(queue, u)
			}
		}
	}
	for _, src := range a.sys.Cores {
		if src != dst && !a.mark[src] {
			a.addUnreach(ReachFailure{Src: src, Dst: dst, Tag: tag,
				Reason: "no admissible candidate path"})
		}
	}
}

// checkLivelock proves livelock freedom of one round: the adaptive
// (non-escape) candidate sub-graph must be acyclic, so any run of
// consecutive adaptive hops is bounded by its longest path. A cycle is a
// non-progress witness — adaptive candidates could forward a packet around
// it forever. Escape candidates are excluded: their progress is certified
// by checkEscapeWalk's termination bound, and a packet alternating between
// the two networks still terminates because every adaptive placement
// re-offers the terminating escape continuation.
func (a *analyzer) checkLivelock(dst, tag int) {
	n := len(a.sys.Nodes)
	for i := 0; i < n; i++ {
		a.acolor[i] = 0
		a.adepth[i] = 0
	}
	var stack []int
	var cycle []int
	var dfs func(v int) bool
	dfs = func(v int) bool {
		a.acolor[v] = 1
		stack = append(stack, v)
		best := int32(0)
		for _, to := range a.aadj[v] {
			switch a.acolor[to] {
			case 1:
				i := len(stack) - 1
				for i > 0 && stack[i] != to {
					i--
				}
				cycle = append(cycle, stack[i:]...)
				return true
			case 0:
				if dfs(to) {
					return true
				}
			}
			if d := a.adepth[to] + 1; d > best {
				best = d
			}
		}
		stack = stack[:len(stack)-1]
		a.acolor[v] = 2
		a.adepth[v] = best
		return false
	}
	for v := 0; v < n; v++ {
		if a.acolor[v] != 0 || len(a.aadj[v]) == 0 {
			continue
		}
		if dfs(v) {
			a.addLivelock(LivelockCycle{Dst: dst, Tag: tag, Nodes: rotateMin(cycle)})
			return // one witness per round
		}
		if d := int(a.adepth[v]); d > a.rep.AdaptiveHopBound {
			a.rep.AdaptiveHopBound = d
		}
	}
}

// rotateMin rotates a cycle in place so the smallest node id leads,
// making witnesses independent of the DFS entry point.
func rotateMin(cycle []int) []int {
	if len(cycle) == 0 {
		return cycle
	}
	min := 0
	for i, v := range cycle {
		if v < cycle[min] {
			min = i
		}
	}
	out := make([]int, 0, len(cycle))
	out = append(out, cycle[min:]...)
	return append(out, cycle[:min]...)
}

// checkEscapeWalk verifies the escape function alone delivers every packet
// (termination, hence the escape sub-network's own livelock freedom),
// records the longest walk as the certified escape hop bound, and checks
// Theorem 1's VC discipline along the way: within one chiplet the escape
// VC class must be non-decreasing (a packet may climb from the d- class to
// the d+ class but never back), with the cross-chiplet hop resetting the
// ordering for the next chiplet.
func (a *analyzer) checkEscapeWalk(dst, tag int, p *packet.Packet) {
	bound := 4 * len(a.sys.Nodes)
	for _, src := range a.sources {
		if src == dst {
			continue
		}
		v, done := src, false
		steps, prevVC, checkVC := 0, -1, true
		for step := 0; step <= bound; step++ {
			if v == dst {
				done = true
				break
			}
			next, vc, ok := a.rt.EscapeStep(v, p)
			if !ok {
				break
			}
			if checkVC && prevVC >= 0 && vc < prevVC {
				a.addVCViolation(fmt.Sprintf("escape VC class not monotone within chiplet: vc%d after vc%d at %v",
					vc, prevVC, StateRef{v, dst, tag}))
				checkVC = false
			}
			if a.sys.Nodes[v].Chiplet != a.sys.Nodes[next].Chiplet {
				prevVC = -1
			} else {
				prevVC = vc
			}
			v = next
			steps++
		}
		if !done {
			a.addUnreach(ReachFailure{Src: src, Dst: dst, Tag: tag,
				Reason: fmt.Sprintf("escape walk does not terminate (stuck near node %d)", v)})
		} else if steps > a.rep.EscapeHopBound {
			a.rep.EscapeHopBound = steps
		}
	}
}

// emitWalkDeps emits the safe/unsafe-mode CDG edges for one (destination,
// tag) round: the consecutive-channel dependencies of every pure
// minus-first walk from an injection core to the destination. Adaptive
// placements are deliberately excluded — under the safe/unsafe flow
// control packets off the minus-first structure are throttled by
// Algorithm 5, not by channel ordering, so only the structure's own
// acyclicity is the certifiable property.
func (a *analyzer) emitWalkDeps(dst, tag int) {
	p := &packet.Packet{Src: -1, Dst: dst, Tag: tag, Len: 1}
	bound := 4 * len(a.sys.Nodes)
	for _, src := range a.sys.Cores {
		if src == dst {
			continue
		}
		v := src
		var prev Channel
		havePrev := false
		steps, prevVC, checkVC := 0, -1, true
		for step := 0; step <= bound && v != dst; step++ {
			next, vc, ok := a.rt.EscapeStep(v, p)
			if !ok {
				break
			}
			if checkVC && prevVC >= 0 && vc < prevVC {
				a.addVCViolation(fmt.Sprintf("escape VC class not monotone within chiplet: vc%d after vc%d at %v",
					vc, prevVC, StateRef{v, dst, tag}))
				checkVC = false
			}
			if a.sys.Nodes[v].Chiplet != a.sys.Nodes[next].Chiplet {
				prevVC = -1
			} else {
				prevVC = vc
			}
			cur := Channel{v, next, vc}
			if havePrev {
				a.addDep(prev, cur, dst, tag)
			}
			prev, havePrev = cur, true
			v = next
			steps++
		}
		if v == dst && steps > a.rep.EscapeHopBound {
			a.rep.EscapeHopBound = steps
		}
	}
}

func (a *analyzer) addDep(from, to Channel, dst, tag int) {
	e := [2]Channel{from, to}
	if a.seen[e] {
		return
	}
	a.seen[e] = true
	a.info[e] = [2]int{dst, tag}
	if _, ok := a.adj[from]; !ok {
		a.order = append(a.order, from)
	}
	a.adj[from] = append(a.adj[from], to)
}

// findCycle runs a deterministic DFS (roots in first-insertion order) over
// the CDG and records the first cycle found as the witness.
func (a *analyzer) findCycle() {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[Channel]int, len(a.adj))
	var stack []Channel
	var cycle []Channel
	var dfs func(c Channel) bool
	dfs = func(c Channel) bool {
		color[c] = gray
		stack = append(stack, c)
		for _, nx := range a.adj[c] {
			switch color[nx] {
			case gray:
				i := len(stack) - 1
				for i > 0 && stack[i] != nx {
					i--
				}
				cycle = append(cycle, stack[i:]...)
				return true
			case white:
				if dfs(nx) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[c] = black
		return false
	}
	for _, root := range a.order {
		if color[root] == white && dfs(root) {
			break
		}
	}
	for i := range cycle {
		from, to := cycle[i], cycle[(i+1)%len(cycle)]
		meta := a.info[[2]Channel{from, to}]
		a.rep.Cycle = append(a.rep.Cycle, DepEdge{From: from, To: to, Dst: meta[0], Tag: meta[1]})
	}
}

// room reports whether another finding may be recorded in a slice of the
// current length, counting overflow into Truncated.
func (a *analyzer) room(have int) bool {
	if have < a.opt.MaxWitnesses {
		return true
	}
	a.rep.Truncated++
	return false
}

func (a *analyzer) addDeadEnd(s StateRef) {
	if a.room(len(a.rep.DeadEnds)) {
		a.rep.DeadEnds = append(a.rep.DeadEnds, s)
	}
}

func (a *analyzer) addMissingEscape(s StateRef) {
	if a.room(len(a.rep.MissingEscape)) {
		a.rep.MissingEscape = append(a.rep.MissingEscape, s)
	}
}

func (a *analyzer) addUnreach(f ReachFailure) {
	if a.room(len(a.rep.Unreachable)) {
		a.rep.Unreachable = append(a.rep.Unreachable, f)
	}
}

func (a *analyzer) addVCViolation(msg string) {
	if a.room(len(a.rep.VCViolations)) {
		a.rep.VCViolations = append(a.rep.VCViolations, msg)
	}
}

func (a *analyzer) addLivelock(c LivelockCycle) {
	if a.room(len(a.rep.Livelock)) {
		a.rep.Livelock = append(a.rep.Livelock, c)
	}
}

// finalize puts every witness category into deterministic sorted order
// (stable diffs across runs regardless of discovery order) and rotates the
// CDG cycle witness to a canonical starting edge.
func (a *analyzer) finalize() {
	r := a.rep
	byState := func(s []StateRef) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].Dst != s[j].Dst {
				return s[i].Dst < s[j].Dst
			}
			if s[i].Tag != s[j].Tag {
				return s[i].Tag < s[j].Tag
			}
			return s[i].Node < s[j].Node
		})
	}
	byState(r.MissingEscape)
	byState(r.DeadEnds)
	sort.Slice(r.Unreachable, func(i, j int) bool {
		a, b := r.Unreachable[i], r.Unreachable[j]
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Tag != b.Tag {
			return a.Tag < b.Tag
		}
		if a.Src != b.Src {
			return a.Src < b.Src
		}
		return a.Reason < b.Reason
	})
	sort.Slice(r.Livelock, func(i, j int) bool {
		a, b := r.Livelock[i], r.Livelock[j]
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		if a.Tag != b.Tag {
			return a.Tag < b.Tag
		}
		for k := 0; k < len(a.Nodes) && k < len(b.Nodes); k++ {
			if a.Nodes[k] != b.Nodes[k] {
				return a.Nodes[k] < b.Nodes[k]
			}
		}
		return len(a.Nodes) < len(b.Nodes)
	})
	sort.Strings(r.VCViolations)
	r.VCViolations = compactStrings(r.VCViolations)
	if len(r.Cycle) > 1 {
		min := 0
		for i := range r.Cycle {
			if depEdgeLess(r.Cycle[i], r.Cycle[min]) {
				min = i
			}
		}
		rotated := make([]DepEdge, 0, len(r.Cycle))
		rotated = append(rotated, r.Cycle[min:]...)
		r.Cycle = append(rotated, r.Cycle[:min]...)
	}
}

func compactStrings(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

func depEdgeLess(a, b DepEdge) bool {
	ka := [8]int{a.From.From, a.From.To, a.From.VC, a.To.From, a.To.To, a.To.VC, a.Dst, a.Tag}
	kb := [8]int{b.From.From, b.From.To, b.From.VC, b.To.From, b.To.To, b.To.VC, b.Dst, b.Tag}
	for i := range ka {
		if ka[i] != kb[i] {
			return ka[i] < kb[i]
		}
	}
	return false
}

// TagClasses returns the number L of interleave-tag equivalence classes of
// sys: two tags t, t' with t ≡ t' (mod L) make identical routing decisions
// everywhere, so the traversal's tag rounds [0, L) cover every
// distinguishable behavior exactly (untagged packets, tag < 0, behave as
// class 0). Every tag use in the routing layer reduces the tag modulo a
// group membership size s (interleave.Index), except that the
// core-reachability rule can drop a group's position-0 leader and reduce
// modulo s-1 — so L is the lcm of s and s-1 over all current (and, under
// fault injection, pre-fault) group memberships.
func TagClasses(sys *topology.System) int {
	l := 1
	add := func(s int) {
		if s >= 2 {
			l = lcm(l, s)
		}
	}
	for _, ch := range sys.Chiplets {
		for _, g := range ch.Groups {
			add(len(g))
			add(len(g) - 1)
		}
	}
	for _, groups := range sys.BaseGroups {
		for _, g := range groups {
			add(len(g))
			add(len(g) - 1)
		}
	}
	return l
}

func lcm(a, b int) int {
	return a / gcd(a, b) * b
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// tagSet returns one representative tag per equivalence class: [0, L).
func tagSet(sys *topology.System) []int {
	l := TagClasses(sys)
	tags := make([]int, l)
	for i := range tags {
		tags[i] = i
	}
	return tags
}

// sampleInts returns list when max is zero or not binding, else max
// entries sampled evenly (deterministically) across the list.
func sampleInts(list []int, max int) []int {
	if max <= 0 || len(list) <= max {
		return list
	}
	out := make([]int, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, list[i*len(list)/max])
	}
	return out
}
