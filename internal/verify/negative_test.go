package verify_test

import (
	"strings"
	"testing"

	"chipletnet/internal/packet"
	"chipletnet/internal/router"
	"chipletnet/internal/routing"
	"chipletnet/internal/topology"
	"chipletnet/internal/verify"
)

// wrap replaces the installed routing with a defective wrapper around it.
func wrap(t *testing.T, sys *topology.System, f func(inner verify.EscapeAnalyzer) router.Routing) {
	t.Helper()
	inner, ok := sys.Fabric.Routing.(verify.EscapeAnalyzer)
	if !ok {
		t.Fatalf("fixture routing %T is not analyzable", sys.Fabric.Routing)
	}
	sys.Fabric.Routing = f(inner)
}

// neighbor returns a neighbor of node v other than avoid (local ports and
// self excluded), or -1.
func neighbor(sys *topology.System, v, avoid int) int {
	for _, pt := range sys.Nodes[v].Ports {
		if pt.To >= 0 && pt.To != v && pt.To != avoid {
			return pt.To
		}
	}
	return -1
}

// unreachableRouting wraps a sound routing but refuses to forward anything
// into its victim node: for rounds destined to the victim, candidates
// targeting it are dropped, and a state left empty-handed gets a fallback
// candidate pointing elsewhere (marked Escape so the adaptive-cycle check
// ignores the detour). The candidate sets stay non-empty everywhere, so the
// only defect the certifier can find is unreachability.
type unreachableRouting struct {
	verify.EscapeAnalyzer
	sys    *topology.System
	victim int
}

func (u *unreachableRouting) Candidates(r *router.Router, inPort int, p *packet.Packet, buf []router.Candidate) []router.Candidate {
	base := len(buf)
	buf = u.EscapeAnalyzer.Candidates(r, inPort, p, buf)
	if p.Dst != u.victim || r.Node == u.victim {
		return buf
	}
	out := buf[:base]
	for _, c := range buf[base:] {
		if o := r.Out[c.Port]; o.Link != nil && o.Link.Dst.Node == u.victim {
			continue
		}
		out = append(out, c)
	}
	if len(out) == base {
		if w := neighbor(u.sys, r.Node, u.victim); w >= 0 {
			out = append(out, router.Candidate{
				Port:   u.sys.PortTo(r.Node, w),
				VCMask: router.VCMaskAll(u.sys.LP.VCs),
				Escape: true,
			})
		}
	}
	return out
}

// TestFlagsUnreachablePair: the seeded unreachable-pair stub must be
// rejected with concrete src -> dst witnesses in deterministic sorted
// order, and with no collateral findings in the other categories.
func TestFlagsUnreachablePair(t *testing.T) {
	sys := build(t, "mesh-3x3")
	install(t, sys, routing.Options{Mode: routing.SafeUnsafe})
	victim := sys.Cores[0]
	wrap(t, sys, func(inner verify.EscapeAnalyzer) router.Routing {
		return &unreachableRouting{EscapeAnalyzer: inner, sys: sys, victim: victim}
	})

	rep := verify.Run(sys, verify.Options{})
	if rep.Certified() {
		t.Fatalf("unreachable victim not flagged:\n%s", rep)
	}
	if len(rep.Unreachable) == 0 {
		t.Fatalf("no unreachability witnesses:\n%s", rep)
	}
	for i, f := range rep.Unreachable {
		if f.Dst != victim {
			t.Errorf("witness %d blames dst %d, want victim %d", i, f.Dst, victim)
		}
		if f.Src == victim {
			t.Errorf("witness %d names the victim as its own source", i)
		}
		if f.Reason != "no admissible candidate path" {
			t.Errorf("witness %d reason %q", i, f.Reason)
		}
		if i > 0 {
			prev := rep.Unreachable[i-1]
			if prev.Tag > f.Tag || (prev.Tag == f.Tag && prev.Src >= f.Src) {
				t.Errorf("witnesses not sorted: %v before %v", prev, f)
			}
		}
	}
	if len(rep.DeadEnds) != 0 || len(rep.Livelock) != 0 || len(rep.VCViolations) != 0 {
		t.Errorf("collateral findings beyond unreachability:\n%s", rep)
	}
	err := rep.Err()
	if err == nil || !strings.Contains(err.Error(), "unreachable") {
		t.Errorf("Err() = %v, want an unreachable-pair error", err)
	}

	cert := rep.Certificate()
	for _, o := range cert.Obligations {
		switch o.Name {
		case "reachability":
			if o.Proved || len(o.Witnesses) == 0 {
				t.Errorf("reachability obligation not failed with witnesses: %+v", o)
			}
		case "livelock-freedom", "vc-discipline", "deadlock-freedom":
			if !o.Proved {
				t.Errorf("obligation %s unexpectedly failed: %+v", o.Name, o)
			}
		}
	}
	if cert.Certified || cert.PreflightOK {
		t.Errorf("certificate certified=%v preflight=%v for an unreachable system",
			cert.Certified, cert.PreflightOK)
	}
}

// pingPongRouting wraps a sound routing with a livelock-prone defect: at
// the two adjacent nodes a and b it replaces every adaptive candidate with
// one pointing at the other node, keeping only the escape continuation.
// Packets bounce a -> b -> a forever on the adaptive network while
// reachability, escape coverage and VC discipline all stay intact.
type pingPongRouting struct {
	verify.EscapeAnalyzer
	sys  *topology.System
	a, b int
}

func (g *pingPongRouting) Candidates(r *router.Router, inPort int, p *packet.Packet, buf []router.Candidate) []router.Candidate {
	base := len(buf)
	buf = g.EscapeAnalyzer.Candidates(r, inPort, p, buf)
	v := r.Node
	if p.Dst == g.a || p.Dst == g.b || (v != g.a && v != g.b) {
		return buf
	}
	to := g.b
	if v == g.b {
		to = g.a
	}
	var esc []router.Candidate
	for _, c := range buf[base:] {
		if c.Escape {
			esc = append(esc, c)
		}
	}
	out := append(buf[:base], router.Candidate{
		Port:   g.sys.PortTo(v, to),
		VCMask: router.VCMaskAll(g.sys.LP.VCs) &^ 1,
	})
	return append(out, esc...)
}

// TestFlagsLivelockCycle: the seeded ping-pong stub must be rejected with
// the exact two-node non-progress cycle as its witness, rotated to the
// smaller node id, while every other obligation still holds.
func TestFlagsLivelockCycle(t *testing.T) {
	sys := build(t, "mesh-3x3")
	install(t, sys, routing.Options{Mode: routing.DuatoEscape})
	a := sys.Cores[0]
	b := neighbor(sys, a, -1)
	if b < 0 {
		t.Fatalf("core %d has no neighbor", a)
	}
	if b < a {
		a, b = b, a
	}
	wrap(t, sys, func(inner verify.EscapeAnalyzer) router.Routing {
		return &pingPongRouting{EscapeAnalyzer: inner, sys: sys, a: a, b: b}
	})

	rep := verify.Run(sys, verify.Options{})
	if rep.Certified() {
		t.Fatalf("ping-pong candidates not flagged:\n%s", rep)
	}
	if len(rep.Livelock) == 0 {
		t.Fatalf("no livelock witnesses:\n%s", rep)
	}
	for i, c := range rep.Livelock {
		if len(c.Nodes) != 2 || c.Nodes[0] != a || c.Nodes[1] != b {
			t.Errorf("witness %d cycle %v, want [%d %d]", i, c.Nodes, a, b)
		}
		if c.Dst == a || c.Dst == b {
			t.Errorf("witness %d blames a round (dst %d) the stub leaves intact", i, c.Dst)
		}
		if i > 0 {
			prev := rep.Livelock[i-1]
			if prev.Dst > c.Dst || (prev.Dst == c.Dst && prev.Tag >= c.Tag) {
				t.Errorf("witnesses not sorted: %v before %v", prev, c)
			}
		}
	}
	if len(rep.Unreachable) != 0 || len(rep.DeadEnds) != 0 ||
		len(rep.MissingEscape) != 0 || len(rep.VCViolations) != 0 {
		t.Errorf("collateral findings beyond livelock:\n%s", rep)
	}
	if !rep.Acyclic() {
		t.Errorf("escape CDG unexpectedly cyclic:\n%s", rep)
	}
	err := rep.Err()
	if err == nil || !strings.Contains(err.Error(), "non-progress") {
		t.Errorf("Err() = %v, want a non-progress-cycle error", err)
	}

	cert := rep.Certificate()
	for _, o := range cert.Obligations {
		if o.Name == "livelock-freedom" {
			if o.Proved || len(o.Witnesses) == 0 {
				t.Errorf("livelock obligation not failed with witnesses: %+v", o)
			}
		} else if !o.Proved {
			t.Errorf("obligation %s unexpectedly failed: %+v", o.Name, o)
		}
	}
	if cert.Certified || cert.PreflightOK {
		t.Errorf("certificate certified=%v preflight=%v for a livelock-prone system",
			cert.Certified, cert.PreflightOK)
	}
}

// TestReportErrPrecedence pins the Err() distillation order: aborted
// analyses first, then structural breakage (dead ends, unreachability,
// livelock, VC discipline), then the Duato-only escape findings — which
// must be non-fatal under safe/unsafe flow control.
func TestReportErrPrecedence(t *testing.T) {
	state := []verify.StateRef{{Node: 1, Dst: 2, Tag: 0}}
	unreach := []verify.ReachFailure{{Src: 1, Dst: 2, Tag: 0, Reason: "no admissible candidate path"}}
	cycle := []verify.DepEdge{
		{From: verify.Channel{From: 0, To: 1, VC: 0}, To: verify.Channel{From: 1, To: 0, VC: 0}},
		{From: verify.Channel{From: 1, To: 0, VC: 0}, To: verify.Channel{From: 0, To: 1, VC: 0}},
	}
	lived := []verify.LivelockCycle{{Dst: 2, Tag: 0, Nodes: []int{0, 1}}}

	cases := []struct {
		name string
		rep  verify.Report
		want string // substring of Err(); "" means nil
	}{
		{"clean", verify.Report{}, ""},
		{"panic-beats-everything", verify.Report{Panic: "boom", DeadEnds: state, Cycle: cycle}, "panicked"},
		{"unsupported", verify.Report{Unsupported: "no escape step"}, "no escape step"},
		{"dead-end-beats-unreachable", verify.Report{DeadEnds: state, Unreachable: unreach}, "no route candidate"},
		{"unreachable-beats-livelock", verify.Report{Unreachable: unreach, Livelock: lived}, "unreachable"},
		{"livelock-beats-vc", verify.Report{Livelock: lived, VCViolations: []string{"bad vc"}}, "non-progress"},
		{"vc-beats-missing-escape", verify.Report{EscapeRequired: true, VCViolations: []string{"bad vc"}, MissingEscape: state}, "VC discipline"},
		{"missing-escape-duato", verify.Report{EscapeRequired: true, MissingEscape: state}, "escape continuation"},
		{"missing-escape-ignored-su", verify.Report{MissingEscape: state}, ""},
		{"cycle-duato", verify.Report{EscapeRequired: true, Cycle: cycle}, "cycle"},
		{"cycle-ignored-su", verify.Report{Cycle: cycle}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.rep.Err()
			switch {
			case tc.want == "" && err != nil:
				t.Errorf("Err() = %v, want nil", err)
			case tc.want != "" && err == nil:
				t.Errorf("Err() = nil, want substring %q", tc.want)
			case tc.want != "" && !strings.Contains(err.Error(), tc.want):
				t.Errorf("Err() = %v, want substring %q", err, tc.want)
			}
			if tc.want != "" && tc.rep.Certified() {
				t.Error("report with a fatal finding reports Certified")
			}
		})
	}
}
