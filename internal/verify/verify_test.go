package verify_test

import (
	"testing"

	"chipletnet/internal/chiplet"
	"chipletnet/internal/routing"
	"chipletnet/internal/topology"
	"chipletnet/internal/verify"
)

func testLP() topology.LinkParams {
	return topology.LinkParams{
		VCs: 2, InternalBufFlits: 32, InterfaceBufFlits: 64,
		OnChipBW: 4, OffChipBW: 2, OnChipLatency: 1, OffChipLatency: 5,
		EjectBW: 4,
	}
}

func geo(t *testing.T, w, h int) chiplet.Geometry {
	t.Helper()
	g, err := chiplet.New(w, h)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// build returns a fresh system of the named fixture topology.
func build(t *testing.T, name string) *topology.System {
	t.Helper()
	var (
		sys *topology.System
		err error
	)
	switch name {
	case "mesh-3x3":
		sys, err = topology.BuildFlatMesh(geo(t, 4, 4), 3, 3, testLP())
	case "hypercube-4":
		sys, err = topology.BuildHypercube(geo(t, 4, 4), 4, testLP())
	case "ndmesh-3x2":
		sys, err = topology.BuildNDMesh(geo(t, 4, 4), []int{3, 2}, testLP())
	case "ndmesh-3x2x2":
		sys, err = topology.BuildNDMesh(geo(t, 4, 4), []int{3, 2, 2}, testLP())
	case "ndtorus-4x3":
		sys, err = topology.BuildNDTorus(geo(t, 4, 4), []int{4, 3}, testLP())
	case "dragonfly-6":
		sys, err = topology.BuildDragonfly(geo(t, 4, 4), 6, testLP())
	case "tree-7":
		sys, err = topology.BuildTree(geo(t, 5, 5), 7, 2, testLP())
	case "ring-5":
		sys, err = topology.BuildCustom(geo(t, 4, 4), 5,
			[][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}, testLP())
	default:
		t.Fatalf("unknown fixture %q", name)
	}
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// install constructs routing for sys and installs it on the fabric.
func install(t *testing.T, sys *topology.System, opt routing.Options) {
	t.Helper()
	rt, err := routing.New(sys, opt)
	if err != nil {
		t.Fatal(err)
	}
	sys.Fabric.Routing = rt
}

// assertCycleClosed checks the witness is a well-formed channel cycle.
func assertCycleClosed(t *testing.T, sys *topology.System, cycle []verify.DepEdge) {
	t.Helper()
	if len(cycle) < 2 {
		t.Fatalf("witness cycle too short: %v", cycle)
	}
	for i, e := range cycle {
		next := cycle[(i+1)%len(cycle)]
		if e.To != next.From {
			t.Errorf("witness not closed at edge %d: %v then %v", i, e, next)
		}
		for _, ch := range []verify.Channel{e.From, e.To} {
			if ch.From < 0 || ch.From >= len(sys.Nodes) || ch.To < 0 || ch.To >= len(sys.Nodes) {
				t.Errorf("witness channel %v outside node range", ch)
			}
			if sys.PortTo(ch.From, ch.To) < 0 {
				t.Errorf("witness channel %v is not a physical link", ch)
			}
			if ch.VC < 0 || ch.VC >= sys.LP.VCs {
				t.Errorf("witness channel %v outside VC range", ch)
			}
		}
	}
}

// TestCertifiesKnownGood: every regular builder topology must be certified
// deadlock-free in both routing modes (the acceptance fixture set).
func TestCertifiesKnownGood(t *testing.T) {
	fixtures := []string{
		"mesh-3x3", "hypercube-4", "ndmesh-3x2", "ndmesh-3x2x2",
		"ndtorus-4x3", "dragonfly-6", "tree-7",
	}
	modes := []routing.Options{{Mode: routing.DuatoEscape}, {Mode: routing.SafeUnsafe}}
	for _, name := range fixtures {
		for _, opt := range modes {
			sys := build(t, name)
			install(t, sys, opt)
			rep := verify.Run(sys, verify.Options{})
			if !rep.Certified() {
				t.Errorf("%s / %v not certified:\n%s", name, opt.Mode, rep)
			}
			if rep.States == 0 || rep.EscapeChannels == 0 {
				t.Errorf("%s / %v: empty analysis (%d states, %d channels)",
					name, opt.Mode, rep.States, rep.EscapeChannels)
			}
		}
	}
}

// TestCertifiesFaultedSystem: deterministic link faults reshape the groups;
// the surviving configuration must still verify (the pre-flight use case).
func TestCertifiesFaultedSystem(t *testing.T) {
	sys := build(t, "hypercube-4")
	if _, err := sys.FailRandomCrossLinks(0.2, 7); err != nil {
		t.Fatal(err)
	}
	install(t, sys, routing.Options{})
	rep := verify.Run(sys, verify.Options{})
	if !rep.Certified() {
		t.Errorf("faulted hypercube not certified:\n%s", rep)
	}
}

// TestFlagsEqualChannelMode: disabling the Theorem-1 d+/d- VC separation
// must be flagged with a concrete dependency-cycle witness, while the
// separated twin stays certified.
func TestFlagsEqualChannelMode(t *testing.T) {
	bad := build(t, "ndmesh-3x2x2")
	install(t, bad, routing.Options{DisableNDMeshVCSeparation: true, AllowUnsafe: true})
	rep := verify.Run(bad, verify.Options{})
	if rep.Acyclic() {
		t.Fatalf("equal-channel mode not flagged cyclic:\n%s", rep)
	}
	if rep.Err() == nil {
		t.Error("equal-channel mode under Duato's protocol must fail pre-flight")
	}
	assertCycleClosed(t, bad, rep.Cycle)

	good := build(t, "ndmesh-3x2x2")
	install(t, good, routing.Options{})
	if rep := verify.Run(good, verify.Options{}); !rep.Certified() {
		t.Errorf("separated twin not certified:\n%s", rep)
	}
}

// TestFlagsCyclicCustomRing: shortest-path escape routes around a 5-ring of
// chiplets form a channel cycle; Duato mode must be rejected with a witness
// while safe/unsafe mode remains runnable (flow control carries it).
func TestFlagsCyclicCustomRing(t *testing.T) {
	duato := build(t, "ring-5")
	install(t, duato, routing.Options{AllowUnsafe: true})
	rep := verify.Run(duato, verify.Options{})
	if rep.Acyclic() {
		t.Fatalf("5-ring escape network not flagged cyclic:\n%s", rep)
	}
	if rep.Err() == nil {
		t.Error("cyclic escape network under Duato's protocol must fail pre-flight")
	}
	assertCycleClosed(t, duato, rep.Cycle)

	su := build(t, "ring-5")
	install(t, su, routing.Options{Mode: routing.SafeUnsafe})
	rep = verify.Run(su, verify.Options{})
	if rep.Acyclic() {
		t.Errorf("5-ring minus-first structure unexpectedly acyclic:\n%s", rep)
	}
	if err := rep.Err(); err != nil {
		t.Errorf("safe/unsafe mode on the 5-ring must pass pre-flight, got %v", err)
	}
}

// TestSampling: bounded analysis still certifies and reports its coverage.
func TestSampling(t *testing.T) {
	sys := build(t, "hypercube-4")
	install(t, sys, routing.Options{})
	rep := verify.Run(sys, verify.Options{MaxDests: 4, MaxSources: 2})
	if rep.Dests != 4 {
		t.Errorf("expected 4 sampled destinations, got %d", rep.Dests)
	}
	if !rep.Certified() {
		t.Errorf("sampled run not certified:\n%s", rep)
	}
}

// TestUnsupported: a system without routing yields a structured error, not
// a panic.
func TestUnsupported(t *testing.T) {
	sys := build(t, "hypercube-4")
	rep := verify.Run(sys, verify.Options{})
	if rep.Unsupported == "" || rep.Err() == nil {
		t.Errorf("missing routing not reported: %s", rep)
	}
}
