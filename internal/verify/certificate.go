package verify

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"strings"
)

// Obligation is one proof obligation of the certifying traversal: what was
// to be proved, whether it holds, the basis the verdict rests on, and the
// concrete witnesses when it fails.
type Obligation struct {
	// Name is the obligation's stable identifier: "deadlock-freedom",
	// "reachability", "livelock-freedom" or "vc-discipline".
	Name string
	// Proved reports whether the obligation holds for the analyzed system.
	Proved bool
	// Basis is a one-line human-readable statement of what the verdict
	// rests on (the criterion and the quantities it was checked against).
	Basis string
	// Witnesses are the concrete counterexamples when Proved is false, in
	// deterministic sorted order; empty otherwise.
	Witnesses []string
}

// Certificate is the exportable summary of one certifying traversal: the
// four proof obligations with their verdicts and witnesses, plus the
// traversal dimensions they were checked over. It is the artifact
// cmd/chipletverify prints/exports and the DSE layer content-addresses
// next to its cache key; Hash gives the canonical content address.
type Certificate struct {
	// Topology and Mode identify what was analyzed.
	Topology string
	Mode     string
	// Dests, Tags and States are the traversal dimensions: analyzed
	// destinations, interleave-tag equivalence classes, and visited
	// (node, destination, tag) states.
	Dests, Tags, States int
	// EscapeChannels and DepEdges size the analyzed escape sub-network and
	// its extended channel dependency graph.
	EscapeChannels, DepEdges int
	// EscapeHopBound and AdaptiveHopBound are the certified per-packet hop
	// bounds (see Report).
	EscapeHopBound, AdaptiveHopBound int
	// Obligations holds the four proof obligations in fixed order.
	Obligations []Obligation
	// Certified reports that every obligation is proved (Report.Certified).
	Certified bool
	// PreflightOK reports that the configuration is safe to simulate
	// (Report.Err() == nil): under safe/unsafe flow control a cyclic
	// minus-first structure leaves Certified false but PreflightOK true,
	// because the runtime guarantee there is Algorithm 5's.
	PreflightOK bool
}

func stateStrings(s []StateRef) []string {
	out := make([]string, len(s))
	for i, v := range s {
		out[i] = v.String()
	}
	return out
}

// Certificate distills the report into the exportable certificate.
func (r *Report) Certificate() *Certificate {
	mode := "duato-escape"
	if !r.EscapeRequired {
		mode = "safe-unsafe"
	}
	var deadlock []string
	for _, e := range r.Cycle {
		deadlock = append(deadlock, "cycle edge "+e.String())
	}
	for _, s := range r.MissingEscape {
		deadlock = append(deadlock, "no escape continuation at "+s.String())
	}
	var reach []string
	for _, s := range r.DeadEnds {
		reach = append(reach, "dead end at "+s.String())
	}
	for _, f := range r.Unreachable {
		reach = append(reach, f.String())
	}
	var livelock []string
	for _, c := range r.Livelock {
		livelock = append(livelock, c.String())
	}
	deadlockProved := len(r.Cycle) == 0 && len(r.MissingEscape) == 0
	deadlockBasis := fmt.Sprintf("escape sub-network CDG acyclic over %d channels, %d extended dependencies (Duato's criterion for virtual cut-through)",
		r.EscapeChannels, r.DepEdges)
	if !r.EscapeRequired {
		deadlockBasis = fmt.Sprintf("minus-first structure CDG acyclic over %d channels, %d walk dependencies; runtime guarantee is the safe/unsafe flow control (Algorithm 5)",
			r.EscapeChannels, r.DepEdges)
	}
	c := &Certificate{
		Topology:         r.Topology,
		Mode:             mode,
		Dests:            r.Dests,
		Tags:             r.Tags,
		States:           r.States,
		EscapeChannels:   r.EscapeChannels,
		DepEdges:         r.DepEdges,
		EscapeHopBound:   r.EscapeHopBound,
		AdaptiveHopBound: r.AdaptiveHopBound,
		Obligations: []Obligation{
			{
				Name:      "deadlock-freedom",
				Proved:    deadlockProved,
				Basis:     deadlockBasis,
				Witnesses: deadlock,
			},
			{
				Name:   "reachability",
				Proved: len(r.DeadEnds) == 0 && len(r.Unreachable) == 0,
				Basis: fmt.Sprintf("every source reaches every analyzed destination in the candidate graph (%d destinations x %d tag classes), no dead-end states",
					r.Dests, r.Tags),
				Witnesses: reach,
			},
			{
				Name:   "livelock-freedom",
				Proved: len(r.Livelock) == 0,
				Basis: fmt.Sprintf("adaptive candidate sub-graph acyclic per round (runs <= %d hops) and escape walks terminate (<= %d hops)",
					r.AdaptiveHopBound, r.EscapeHopBound),
				Witnesses: livelock,
			},
			{
				Name:   "vc-discipline",
				Proved: len(r.VCViolations) == 0,
				Basis: "candidate masks and escape VCs within the configured range, escape VC class monotone within each chiplet (Theorem 1)",
				Witnesses: append([]string(nil), r.VCViolations...),
			},
		},
		Certified:   r.Certified(),
		PreflightOK: r.Err() == nil,
	}
	if r.Panic != "" || r.Unsupported != "" {
		// An aborted analysis proves nothing: mark every obligation open.
		for i := range c.Obligations {
			c.Obligations[i].Proved = false
			c.Obligations[i].Basis = "analysis incomplete: " + r.Panic + r.Unsupported
		}
	}
	return c
}

// Hash is the certificate's content address: the hex SHA-256 of its
// canonical gob encoding. Two runs over the same built system produce the
// same hash (the traversal and witness ordering are deterministic), so the
// hash keys certified-table caches and DSE pruning records.
func (c *Certificate) Hash() string {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(c); err != nil {
		panic(fmt.Sprintf("verify: certificate not encodable: %v", err))
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// String pretty-prints the certificate.
func (c *Certificate) String() string {
	var b strings.Builder
	verdict := "NOT CERTIFIED"
	if c.Certified {
		verdict = "CERTIFIED"
	}
	fmt.Fprintf(&b, "certificate %s: topology %s, mode %s — %s\n", c.Hash()[:16], c.Topology, c.Mode, verdict)
	fmt.Fprintf(&b, "  traversal: %d destinations x %d tag classes, %d states, %d escape channels, %d dependencies\n",
		c.Dests, c.Tags, c.States, c.EscapeChannels, c.DepEdges)
	for _, o := range c.Obligations {
		mark := "proved"
		if !o.Proved {
			mark = "FAILED"
		}
		fmt.Fprintf(&b, "  %-17s %s — %s\n", o.Name+":", mark, o.Basis)
		for _, w := range o.Witnesses {
			fmt.Fprintf(&b, "    witness: %s\n", w)
		}
	}
	return b.String()
}
