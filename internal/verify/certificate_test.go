package verify_test

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"testing"
	"unicode/utf8"

	"chipletnet/internal/routing"
	"chipletnet/internal/verify"
)

// TestCertificateDeterministic: two independent runs over the same built
// system must produce byte-identical certificates — the content address is
// what keys certified-table caches and DSE pruning records.
func TestCertificateDeterministic(t *testing.T) {
	hash := func() string {
		sys := build(t, "hypercube-4")
		install(t, sys, routing.Options{})
		rep := verify.Run(sys, verify.Options{})
		cert := rep.Certificate()
		if !cert.Certified || !cert.PreflightOK {
			t.Fatalf("fixture not certified:\n%s", rep)
		}
		if len(cert.Obligations) != 4 {
			t.Fatalf("want 4 obligations, got %d", len(cert.Obligations))
		}
		for i, name := range []string{"deadlock-freedom", "reachability", "livelock-freedom", "vc-discipline"} {
			if cert.Obligations[i].Name != name {
				t.Fatalf("obligation %d is %q, want %q", i, cert.Obligations[i].Name, name)
			}
			if !cert.Obligations[i].Proved || len(cert.Obligations[i].Witnesses) != 0 {
				t.Fatalf("obligation %q not cleanly proved: %+v", name, cert.Obligations[i])
			}
		}
		return cert.Hash()
	}
	if a, b := hash(), hash(); a != b {
		t.Errorf("certificate hash not deterministic: %s vs %s", a, b)
	}
}

// TestCertificateAborted: a panicked or unsupported analysis proves
// nothing — every obligation must come back open.
func TestCertificateAborted(t *testing.T) {
	rep := &verify.Report{Unsupported: "routing not analyzable"}
	cert := rep.Certificate()
	if cert.Certified || cert.PreflightOK {
		t.Errorf("aborted analysis certified=%v preflight=%v", cert.Certified, cert.PreflightOK)
	}
	for _, o := range cert.Obligations {
		if o.Proved {
			t.Errorf("obligation %s proved by an aborted analysis", o.Name)
		}
		if o.Basis != "analysis incomplete: routing not analyzable" {
			t.Errorf("obligation %s basis %q", o.Name, o.Basis)
		}
	}
}

// FuzzCertificateRoundTrip: a certificate must survive its two wire
// encodings — gob (the Hash content address) and JSON (the chipletverify
// export) — with its content address intact.
func FuzzCertificateRoundTrip(f *testing.F) {
	f.Add("hypercube", "duato-escape", 16, 12, 4096, 9, true, "")
	f.Add("mesh", "safe-unsafe", 9, 1, 81, 0, false, "cycle edge 0->1/vc0 => 1->2/vc0  [packet to 2, tag 0]")
	f.Add("", "", 0, 0, 0, -3, false, "3 -> 5 -> 3  [packet to 0, tag 1]")
	f.Fuzz(func(t *testing.T, topo, mode string, dests, tags, states, bound int, proved bool, witness string) {
		obligations := make([]verify.Obligation, 4)
		for i, name := range []string{"deadlock-freedom", "reachability", "livelock-freedom", "vc-discipline"} {
			obligations[i] = verify.Obligation{Name: name, Proved: proved, Basis: mode}
		}
		if witness != "" {
			obligations[2].Proved = false
			obligations[2].Witnesses = []string{witness}
		}
		c := &verify.Certificate{
			Topology:         topo,
			Mode:             mode,
			Dests:            dests,
			Tags:             tags,
			States:           states,
			EscapeChannels:   dests * tags,
			DepEdges:         states,
			EscapeHopBound:   bound,
			AdaptiveHopBound: bound / 2,
			Obligations:      obligations,
			Certified:        proved && witness == "",
			PreflightOK:      proved,
		}
		h := c.Hash()
		if c.Hash() != h {
			t.Fatal("Hash not stable across calls")
		}

		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(c); err != nil {
			t.Fatalf("gob encode: %v", err)
		}
		var viaGob verify.Certificate
		if err := gob.NewDecoder(&buf).Decode(&viaGob); err != nil {
			t.Fatalf("gob decode: %v", err)
		}
		if viaGob.Hash() != h {
			t.Errorf("gob round trip changed the content address: %s -> %s", h, viaGob.Hash())
		}
		if viaGob.Topology != c.Topology || viaGob.Certified != c.Certified ||
			viaGob.States != c.States || len(viaGob.Obligations) != len(c.Obligations) {
			t.Errorf("gob round trip changed fields: %+v vs %+v", viaGob, c)
		}

		// JSON cannot represent invalid UTF-8 (Marshal substitutes U+FFFD),
		// so the JSON address-preservation property only holds for valid
		// string content — which is all the certifier ever emits.
		if !utf8.ValidString(topo) || !utf8.ValidString(mode) || !utf8.ValidString(witness) {
			return
		}
		js, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("json marshal: %v", err)
		}
		var viaJSON verify.Certificate
		if err := json.Unmarshal(js, &viaJSON); err != nil {
			t.Fatalf("json unmarshal: %v", err)
		}
		if viaJSON.Hash() != h {
			t.Errorf("json round trip changed the content address: %s -> %s", h, viaJSON.Hash())
		}
	})
}
