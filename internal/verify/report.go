package verify

import (
	"fmt"
	"strings"
)

// Channel identifies one virtual channel of a directed physical link: the
// link From -> To restricted to virtual channel VC. Channels are the
// vertices of the channel dependency graph.
type Channel struct {
	From, To int // global node ids
	VC       int
}

func (c Channel) String() string { return fmt.Sprintf("%d->%d/vc%d", c.From, c.To, c.VC) }

// DepEdge is one dependency of the channel dependency graph: a packet
// occupying channel From can request channel To as its next escape hop.
// Dst and Tag record the (destination, interleave tag) routing round that
// first induced the dependency, making every witness edge reproducible.
type DepEdge struct {
	From, To Channel
	Dst, Tag int
}

func (e DepEdge) String() string {
	return fmt.Sprintf("%v => %v  [packet to %d, tag %d]", e.From, e.To, e.Dst, e.Tag)
}

// StateRef identifies one routing state: a packet headed to destination Dst
// with interleave tag Tag, currently at node Node.
type StateRef struct{ Node, Dst, Tag int }

func (s StateRef) String() string {
	return fmt.Sprintf("node %d (packet to %d, tag %d)", s.Node, s.Dst, s.Tag)
}

// ReachFailure records a source node with no path to a destination.
type ReachFailure struct {
	Src, Dst, Tag int
	// Reason distinguishes candidate-graph unreachability from a
	// non-terminating escape walk.
	Reason string
}

func (f ReachFailure) String() string {
	return fmt.Sprintf("%d -> %d (tag %d): %s", f.Src, f.Dst, f.Tag, f.Reason)
}

// LivelockCycle is a non-progress cycle witness: a cycle of nodes in the
// adaptive candidate graph of one (destination, tag) round, around which a
// packet could be forwarded forever without getting closer to delivery.
// Nodes[i] offers an adaptive (non-escape) candidate toward Nodes[i+1],
// wrapping around; the cycle is rotated so the smallest node id comes
// first.
type LivelockCycle struct {
	Dst, Tag int
	Nodes    []int
}

func (c LivelockCycle) String() string {
	var b strings.Builder
	for _, n := range c.Nodes {
		fmt.Fprintf(&b, "%d -> ", n)
	}
	if len(c.Nodes) > 0 {
		fmt.Fprintf(&b, "%d", c.Nodes[0])
	}
	return fmt.Sprintf("%s  [packet to %d, tag %d]", b.String(), c.Dst, c.Tag)
}

// Report is the structured verdict of one static analysis run.
type Report struct {
	// Topology names the analyzed topology kind.
	Topology string
	// EscapeRequired records whether the routing mode relies on the escape
	// sub-network for deadlock freedom (Duato's protocol). When false
	// (safe/unsafe flow control), a cycle below means "the minus-first
	// structure is not certified by Duato's criterion", not "will
	// deadlock": Algorithm 5's flow control provides the runtime
	// guarantee, and only structural breakage is fatal (see Err).
	EscapeRequired bool

	// Dests, Tags and States count the analyzed destinations, interleave
	// tags and visited (node, destination, tag) routing states.
	Dests, Tags, States int
	// EscapeChannels is |C1|, the escape sub-network channel count;
	// DepEdges the dependency count of the analyzed CDG.
	EscapeChannels, DepEdges int

	// Cycle is the dependency-cycle witness: edge i's To channel is edge
	// i+1's From channel, wrapping around. Empty when the CDG is acyclic.
	Cycle []DepEdge
	// MissingEscape lists reachable states with no escape continuation
	// (recorded only when EscapeRequired).
	MissingEscape []StateRef
	// DeadEnds lists reachable states whose candidate set is empty — the
	// router would panic at runtime.
	DeadEnds []StateRef
	// Unreachable lists src -> dst pairs with no admissible path.
	Unreachable []ReachFailure
	// Livelock lists non-progress cycles of the adaptive candidate graph:
	// adaptive (non-escape) candidates that could forward a packet in a
	// cycle forever. Escape candidates are excluded — escape progress is
	// certified separately by the walk-termination check, and mixed
	// adaptive/escape alternation cannot persist (each hop re-offers the
	// terminating escape continuation).
	Livelock []LivelockCycle
	// VCViolations lists VC-discipline inconsistencies: escape VCs or
	// candidate masks outside the configured VC range, or ejection
	// candidates away from the destination.
	VCViolations []string
	// Truncated counts findings dropped beyond Options.MaxWitnesses.
	Truncated int

	// EscapeHopBound is the longest escape walk observed from any analyzed
	// source state: a certified upper bound on the hops a packet spends on
	// the escape sub-network before delivery. Zero when no walks ran.
	EscapeHopBound int
	// AdaptiveHopBound is the longest path of the (acyclic) adaptive
	// candidate graph across all rounds: a certified upper bound on the
	// consecutive adaptive hops a packet can take before it must be at the
	// destination or on the escape network. Meaningless when Livelock is
	// non-empty.
	AdaptiveHopBound int

	// Panic is set when the routing function panicked during analysis
	// (the panic is recovered; the report is otherwise incomplete).
	Panic string
	// Unsupported is set when the routing implementation does not expose
	// the EscapeAnalyzer interface needed for static analysis.
	Unsupported string
}

// Acyclic reports whether the CDG was fully built and contains no cycle.
func (r *Report) Acyclic() bool {
	return r.Panic == "" && r.Unsupported == "" && len(r.Cycle) == 0
}

// Certified reports whether every check passed: acyclic escape CDG, full
// reachability, complete escape coverage and consistent VC discipline —
// the configuration is statically certified deadlock-free by Duato's
// criterion for virtual cut-through switching.
func (r *Report) Certified() bool {
	return r.Acyclic() && len(r.MissingEscape) == 0 && len(r.DeadEnds) == 0 &&
		len(r.Unreachable) == 0 && len(r.Livelock) == 0 && len(r.VCViolations) == 0
}

// Err distills the report into an error for pre-flight gating: nil when
// the configuration is safe to simulate. Escape-CDG findings (cycle,
// missing escape continuation) are fatal only under Duato's protocol;
// under safe/unsafe flow control the runtime guarantee is Algorithm 5's,
// so only structural breakage (routing panic, dead-end states,
// unreachable pairs, VC range errors) rejects the configuration.
func (r *Report) Err() error {
	switch {
	case r.Panic != "":
		return fmt.Errorf("verify: routing panicked during analysis: %s", r.Panic)
	case r.Unsupported != "":
		return fmt.Errorf("verify: %s", r.Unsupported)
	case len(r.DeadEnds) > 0:
		return fmt.Errorf("verify: %d reachable states have no route candidate (first: %v)",
			len(r.DeadEnds), r.DeadEnds[0])
	case len(r.Unreachable) > 0:
		return fmt.Errorf("verify: %d src->dst pairs unreachable (first: %v)",
			len(r.Unreachable), r.Unreachable[0])
	case len(r.Livelock) > 0:
		return fmt.Errorf("verify: adaptive candidate graph has a %d-node non-progress cycle (%v)",
			len(r.Livelock[0].Nodes), r.Livelock[0])
	case len(r.VCViolations) > 0:
		return fmt.Errorf("verify: VC discipline violated: %s", r.VCViolations[0])
	case r.EscapeRequired && len(r.MissingEscape) > 0:
		return fmt.Errorf("verify: %d reachable states lack an escape continuation (first: %v)",
			len(r.MissingEscape), r.MissingEscape[0])
	case r.EscapeRequired && len(r.Cycle) > 0:
		return fmt.Errorf("verify: escape channel dependency graph has a %d-edge cycle (%v ...)",
			len(r.Cycle), r.Cycle[0])
	}
	return nil
}

// String pretty-prints the report, witnesses included.
func (r *Report) String() string {
	var b strings.Builder
	mode := "escape-based (Duato's protocol)"
	if !r.EscapeRequired {
		mode = "flow-control-based (safe/unsafe)"
	}
	fmt.Fprintf(&b, "topology %s, %s: %d escape channels, %d dependencies over %d destinations x %d tags (%d states)\n",
		r.Topology, mode, r.EscapeChannels, r.DepEdges, r.Dests, r.Tags, r.States)
	switch {
	case r.Panic != "":
		fmt.Fprintf(&b, "ERROR: routing panicked during analysis: %s\n", r.Panic)
	case r.Unsupported != "":
		fmt.Fprintf(&b, "ERROR: %s\n", r.Unsupported)
	}
	if len(r.Cycle) > 0 {
		fmt.Fprintf(&b, "CYCLE: the channel dependency graph has a %d-edge cycle:\n", len(r.Cycle))
		for _, e := range r.Cycle {
			fmt.Fprintf(&b, "  %v\n", e)
		}
	}
	for _, s := range r.MissingEscape {
		fmt.Fprintf(&b, "NO ESCAPE: %v\n", s)
	}
	for _, s := range r.DeadEnds {
		fmt.Fprintf(&b, "DEAD END: no route candidates at %v\n", s)
	}
	for _, f := range r.Unreachable {
		fmt.Fprintf(&b, "UNREACHABLE: %v\n", f)
	}
	for _, c := range r.Livelock {
		fmt.Fprintf(&b, "LIVELOCK: %v\n", c)
	}
	for _, v := range r.VCViolations {
		fmt.Fprintf(&b, "VC DISCIPLINE: %s\n", v)
	}
	if r.Truncated > 0 {
		fmt.Fprintf(&b, "... %d further findings truncated\n", r.Truncated)
	}
	if r.EscapeHopBound > 0 || r.AdaptiveHopBound > 0 {
		fmt.Fprintf(&b, "hop bounds: escape walks <= %d hops, adaptive runs <= %d hops\n",
			r.EscapeHopBound, r.AdaptiveHopBound)
	}
	if r.Certified() {
		b.WriteString("PASS: escape sub-network acyclic, all pairs reachable, livelock-free, escape coverage complete\n")
	} else if err := r.Err(); err == nil {
		b.WriteString("PASS (not certified): structure sound; deadlock freedom rests on the safe/unsafe flow control\n")
	} else {
		fmt.Fprintf(&b, "FAIL: %v\n", err)
	}
	return b.String()
}
