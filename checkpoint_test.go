package chipletnet

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"chipletnet/internal/checkpoint"
)

// ckptTestConfig returns a small fast configuration for checkpoint tests:
// 100 warm-up + 500 measured cycles with a drain phase, so an interrupt
// can land in warm-up, measurement, or drain.
func ckptTestConfig(topo Topology) Config {
	cfg := DefaultConfig()
	cfg.Topology = topo
	cfg.InjectionRate = 0.1
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 500
	cfg.DrainCycles = 30000
	return cfg
}

// errText renders an error for identity comparison ("" for nil).
func errText(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// resultJSON renders a Result for byte-identity comparison.
func resultJSON(t *testing.T, res Result) string {
	t.Helper()
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

// runInterruptedAndResume runs cfg until stopCycle, checkpoints, resumes,
// and returns the resumed run's outcome.
func runInterruptedAndResume(t *testing.T, cfg Config, stopCycle int64) (Result, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "run.ckpt")
	sys, err := Build(cfg)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	_, err = sys.SimulateControlled(RunControl{CheckpointPath: path, InterruptAtCycle: stopCycle})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupt at cycle %d: got error %v, want ErrInterrupted", stopCycle, err)
	}
	return ResumeRun(path, RunControl{})
}

// TestCheckpointResumeBitIdentical is the tentpole guarantee: for every
// topology kind, with and without fault injection, a run interrupted at a
// checkpoint and resumed finishes with a Result — statistics, fault log,
// energy — byte-identical to the uninterrupted run's.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	topos := []struct {
		name    string
		topo    Topology
		grouped bool // supports kill events (interface-group redundancy)
	}{
		{"mesh", MeshTopology(2, 2), false},
		{"hypercube", HypercubeTopology(3), true},
		{"dragonfly", DragonflyTopology(4), true},
		{"tree", TreeTopology(5, 2), true},
	}
	for _, tc := range topos {
		t.Run(tc.name, func(t *testing.T) {
			base := ckptTestConfig(tc.topo)

			// Fault schedule: BER everywhere, plus a derating on the first
			// chiplet-to-chiplet channel and (on grouped topologies) a
			// permanent kill — the scheduled events strike after the
			// cycle-300 interrupt point so their replay after resume is
			// exercised, and before the cycle-450 one so the restored
			// post-fault state is too. The flat mesh baseline has no
			// grouped channels to degrade or kill; BER still applies.
			sys, err := Build(base)
			if err != nil {
				t.Fatal(err)
			}
			pairs := sys.Topo.CrossPairs()
			faulty := base
			faulty.Fault.BER = 5e-4
			if len(pairs) > 0 {
				faulty.Fault.Degrade = []FaultDegrade{
					{Cycle: 350, A: pairs[0].A, B: pairs[0].B, BandwidthDiv: 2, LatencyMult: 2},
				}
			}
			if tc.grouped {
				p := pairs[len(pairs)-1]
				faulty.Fault.Kill = []FaultKill{{Cycle: 400, A: p.A, B: p.B}}
			}

			cases := []struct {
				name string
				cfg  Config
			}{
				{"no-faults", base},
				{"faults", faulty},
			}
			for _, cc := range cases {
				t.Run(cc.name, func(t *testing.T) {
					refRes, refErr := Run(cc.cfg)
					ref := resultJSON(t, refRes)
					for _, stop := range []int64{50, 300, 450} {
						res, err := runInterruptedAndResume(t, cc.cfg, stop)
						// Even the error must replay identically (e.g. a
						// typed partition refusal at the kill cycle).
						if errText(err) != errText(refErr) {
							t.Fatalf("stop %d: resumed error %q, uninterrupted error %q", stop, errText(err), errText(refErr))
						}
						if got := resultJSON(t, res); got != ref {
							t.Errorf("stop %d: resumed Result differs from uninterrupted run\n got: %s\nwant: %s", stop, got, ref)
						}
					}
				})
			}
		})
	}
}

// TestCheckpointResumeMidDrain interrupts during the drain phase (after
// injection has stopped) and requires the resumed run to finish
// identically — the drain-phase resume path has its own loop bounds.
func TestCheckpointResumeMidDrain(t *testing.T) {
	cfg := ckptTestConfig(HypercubeTopology(3))
	cfg.Fault.BER = 5e-4
	refRes, refErr := Run(cfg)
	if refErr != nil {
		t.Fatalf("uninterrupted run: %v", refErr)
	}
	ref := resultJSON(t, refRes)

	// Cycle 605 is 5 cycles into the drain phase; with off-chip latency 5
	// and packets injected through cycle 600, traffic is still in flight.
	res, err := runInterruptedAndResume(t, cfg, cfg.WarmupCycles+cfg.MeasureCycles+5)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := resultJSON(t, res); got != ref {
		t.Errorf("mid-drain resume differs\n got: %s\nwant: %s", got, ref)
	}
}

// TestCheckpointPeriodicDoesNotPerturb: writing periodic checkpoints must
// not change the simulation at all, and resuming from the last periodic
// snapshot must reproduce the same final Result.
func TestCheckpointPeriodicDoesNotPerturb(t *testing.T) {
	cfg := ckptTestConfig(HypercubeTopology(3))
	cfg.Fault.BER = 5e-4
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	refJSON := resultJSON(t, ref)

	path := filepath.Join(t.TempDir(), "periodic.ckpt")
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.SimulateControlled(RunControl{CheckpointPath: path, CheckpointEvery: 97})
	if err != nil {
		t.Fatal(err)
	}
	if got := resultJSON(t, res); got != refJSON {
		t.Errorf("periodic checkpointing perturbed the run\n got: %s\nwant: %s", got, refJSON)
	}

	st, err := checkpoint.ReadFile(path)
	if err != nil {
		t.Fatalf("reading last periodic checkpoint: %v", err)
	}
	if st.Cycle%97 != 0 {
		t.Errorf("last checkpoint at cycle %d, want a multiple of 97", st.Cycle)
	}
	resumed, err := ResumeRun(path, RunControl{})
	if err != nil {
		t.Fatalf("resume from last periodic checkpoint (cycle %d): %v", st.Cycle, err)
	}
	if got := resultJSON(t, resumed); got != refJSON {
		t.Errorf("resume from periodic checkpoint differs\n got: %s\nwant: %s", got, refJSON)
	}
}

// TestCheckpointTypedErrors: damaged or foreign files must be rejected
// with the matching typed error, never a panic.
func TestCheckpointTypedErrors(t *testing.T) {
	cfg := ckptTestConfig(HypercubeTopology(3))
	cfg.MeasureCycles = 100
	path := filepath.Join(t.TempDir(), "good.ckpt")
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SimulateControlled(RunControl{CheckpointPath: path, InterruptAtCycle: 50}); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("got %v, want ErrInterrupted", err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte, want error) {
		t.Helper()
		p := filepath.Join(t.TempDir(), name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := ResumeRun(p, RunControl{})
		if !errors.Is(err, want) {
			t.Errorf("%s: got %v, want %v", name, err, want)
		}
	}

	check("empty", nil, checkpoint.ErrNotCheckpoint)
	check("foreign", []byte("{\"not\": \"a checkpoint\"}"), checkpoint.ErrNotCheckpoint)

	skewed := append([]byte(nil), good...)
	skewed[8]++ // version field
	check("version-skew", skewed, checkpoint.ErrVersion)

	truncated := good[:len(good)/2]
	check("truncated", truncated, checkpoint.ErrCorrupt)

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/2] ^= 0x40 // payload byte
	check("bit-flip", flipped, checkpoint.ErrCorrupt)
}

// TestCheckpointConfigMismatch: a snapshot restored against a system whose
// structure differs (here: snapshot doctored to reference fault state a
// fault-free configuration lacks) fails with ErrMismatch.
func TestCheckpointConfigMismatch(t *testing.T) {
	cfg := ckptTestConfig(HypercubeTopology(3))
	cfg.Fault.BER = 5e-4
	path := filepath.Join(t.TempDir(), "faulty.ckpt")
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.SimulateControlled(RunControl{CheckpointPath: path, InterruptAtCycle: 200}); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("got %v, want ErrInterrupted", err)
	}
	st, err := checkpoint.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Strip fault injection from the embedded config: the snapshot still
	// carries fault-engine and reliability-protocol state the rebuilt
	// system will not have.
	var embedded Config
	if err := json.Unmarshal(st.Config, &embedded); err != nil {
		t.Fatal(err)
	}
	embedded.Fault = FaultConfig{}
	if st.Config, err = json.Marshal(embedded); err != nil {
		t.Fatal(err)
	}
	if err := checkpoint.WriteFile(path, st); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeRun(path, RunControl{}); !errors.Is(err, checkpoint.ErrMismatch) {
		t.Errorf("got %v, want ErrMismatch", err)
	}
}

// TestSweepPartialResults: a failing rate must not discard the completed
// rates — Sweep returns the partial results alongside a joined error that
// names the failed rate.
func TestSweepPartialResults(t *testing.T) {
	cfg := ckptTestConfig(HypercubeTopology(3))
	cfg.DrainCycles = 0
	cfg.MeasureCycles = 200
	rates := []float64{0.05, -1, 0.1}
	results, err := Sweep(cfg, rates)
	if err == nil {
		t.Fatal("sweep with a negative rate did not error")
	}
	if len(results) != len(rates) {
		t.Fatalf("got %d results, want %d", len(results), len(rates))
	}
	for _, i := range []int{0, 2} {
		if results[i].Endpoints == 0 || results[i].DeliveredPackets == 0 {
			t.Errorf("rate %g: completed result was discarded: %+v", rates[i], results[i].Summary)
		}
	}
	if results[1].Endpoints != 0 {
		t.Errorf("failed rate produced a non-zero result: %+v", results[1].Summary)
	}
}

// TestRunControlDeadline: a closed Deadline aborts the run with ErrTimeout
// and a diagnostic snapshot of the in-flight traffic.
func TestRunControlDeadline(t *testing.T) {
	cfg := ckptTestConfig(HypercubeTopology(3))
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dl := make(chan struct{})
	close(dl)
	res, err := sys.SimulateControlled(RunControl{Deadline: dl})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if !res.TimedOut {
		t.Error("Result.TimedOut not set")
	}
	if res.DeadlockReport == nil {
		t.Error("no diagnostic snapshot on timeout")
	}
}
