// AI accelerator scale-out under a QoS-classed workload: the paper's
// Fig. 2 motivation is reusing one chiplet across system scales, and this
// example drives each scale with the traffic such a system actually
// carries — repeated all-reduce phases (collective class) over background
// memory streams (bulk class) and request/response pairs (latency class)
// — instead of a synthetic Bernoulli pattern. The per-class tail
// latencies show what aggregate averages hide: the latency-class p99
// degrades first as the system grows, and the hypercube's lower diameter
// protects exactly that class.
//
// Every run is bit-deterministic: the same binary prints the same table
// every time, and the example asserts it by running one configuration
// twice and comparing per-class p99s exactly.
package main

import (
	"fmt"
	"log"

	"chipletnet"
)

const workload = "aiscaleout:allreduce-ring,data=256,compute=200,memrate=0.05,reqrate=0.02"

type scale struct {
	name string
	flat chipletnet.Topology
	cube chipletnet.Topology
}

func main() {
	scales := []scale{
		{"edge (4 chiplets)", chipletnet.MeshTopology(2, 2), chipletnet.HypercubeTopology(2)},
		{"workstation (16 chiplets)", chipletnet.MeshTopology(4, 4), chipletnet.HypercubeTopology(4)},
		{"datacenter node (64 chiplets)", chipletnet.MeshTopology(8, 8), chipletnet.HypercubeTopology(6)},
	}

	fmt.Printf("=== workload: %s ===\n", workload)
	for _, sc := range scales {
		flat := run(sc.flat)
		cube := run(sc.cube)
		fmt.Printf("%s\n", sc.name)
		fmt.Printf("  %-12s %-10s %10s %10s %10s\n", "topology", "class", "pkts", "avg", "p99")
		for _, pair := range []struct {
			label string
			res   chipletnet.Result
		}{{"flat-mesh", flat}, {"hypercube", cube}} {
			for _, cs := range pair.res.Classes {
				fmt.Printf("  %-12s %-10s %10d %10.1f %10.0f\n",
					pair.label, cs.Class, cs.MeasuredPackets, cs.AvgLatency, cs.P99Latency)
			}
		}
		fmt.Println()
	}

	// Determinism check: two runs of the same configuration must agree on
	// every per-class p99 exactly, not approximately.
	a, b := run(scales[1].cube), run(scales[1].cube)
	if len(a.Classes) == 0 || len(a.Classes) != len(b.Classes) {
		log.Fatalf("per-class stats missing or unstable: %d vs %d classes", len(a.Classes), len(b.Classes))
	}
	for i := range a.Classes {
		if a.Classes[i].P99Latency != b.Classes[i].P99Latency {
			log.Fatalf("nondeterministic p99 for class %s: %g vs %g",
				a.Classes[i].Class, a.Classes[i].P99Latency, b.Classes[i].P99Latency)
		}
	}
	fmt.Println("determinism: per-class p99 identical across two runs")
	fmt.Println()
	fmt.Println("The same physical chiplet serves every scale; only the software-defined")
	fmt.Println("interface grouping changes. The latency-class tail widens fastest on the")
	fmt.Println("flat mesh as chiplet count grows — the paper's core scaling argument,")
	fmt.Println("sharpened from averages to the QoS tail.")
}

func run(topo chipletnet.Topology) chipletnet.Result {
	cfg := chipletnet.DefaultConfig()
	cfg.Topology = topo
	cfg.Workload = workload
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 2500
	res, err := chipletnet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
