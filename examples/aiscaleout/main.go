// AI accelerator scale-out: the paper's Fig. 2 motivation is reusing one
// chiplet across system scales — edge module, workstation, datacenter node.
// This example takes a single 4x4-NoC AI chiplet design and builds three
// systems from it, comparing the flat-mesh interconnect (how Simba/Dojo
// style systems scale today) against the paper's hypercube methodology at
// each scale, under the all-to-all-heavy traffic a DNN's all-reduce
// produces (uniform) and the transpose pattern of tensor reshuffles.
package main

import (
	"fmt"
	"log"

	"chipletnet"
)

type scale struct {
	name string
	flat chipletnet.Topology
	cube chipletnet.Topology
}

func main() {
	scales := []scale{
		{"edge (4 chiplets)", chipletnet.MeshTopology(2, 2), chipletnet.HypercubeTopology(2)},
		{"workstation (16 chiplets)", chipletnet.MeshTopology(4, 4), chipletnet.HypercubeTopology(4)},
		{"datacenter node (64 chiplets)", chipletnet.MeshTopology(8, 8), chipletnet.HypercubeTopology(6)},
	}

	for _, pattern := range []string{"uniform", "bit-transpose"} {
		fmt.Printf("=== traffic: %s @ 0.25 flits/node/cycle ===\n", pattern)
		for _, sc := range scales {
			flat := run(sc.flat, pattern)
			cube := run(sc.cube, pattern)
			delta := (cube.AvgLatency/flat.AvgLatency - 1) * 100
			fmt.Printf("%-30s  flat-mesh %6.1f cyc / %5.2f pJ/bit   hypercube %6.1f cyc / %5.2f pJ/bit   latency %+5.1f%%\n",
				sc.name, flat.AvgLatency, flat.EnergyPJPerBit, cube.AvgLatency, cube.EnergyPJPerBit, delta)
		}
		fmt.Println()
	}
	fmt.Println("The same physical chiplet serves every scale; only the software-defined")
	fmt.Println("interface grouping changes. The latency gap widens with chiplet count —")
	fmt.Println("the paper's core scaling argument.")
}

func run(topo chipletnet.Topology, pattern string) chipletnet.Result {
	cfg := chipletnet.DefaultConfig()
	cfg.Topology = topo
	cfg.Pattern = pattern
	cfg.InjectionRate = 0.25
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 2500
	res, err := chipletnet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
