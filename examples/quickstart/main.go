// Quickstart: build the paper's headline system — 64 chiplets with 4x4
// 2D-mesh NoCs connected as a hypercube — run uniform traffic at a
// moderate load, and compare it against the flat 2D-mesh baseline.
package main

import (
	"fmt"
	"log"

	"chipletnet"
)

func main() {
	// Start from the paper's Table II parameters.
	cfg := chipletnet.DefaultConfig()
	cfg.InjectionRate = 0.3 // flits/node/cycle
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 2500

	fmt.Println("64 chiplets (4x4-mesh NoC each), uniform traffic @ 0.3 flits/node/cycle")
	fmt.Println()

	for _, topo := range []chipletnet.Topology{
		chipletnet.MeshTopology(8, 8),   // the flat baseline
		chipletnet.HypercubeTopology(6), // the paper's high-radix proposal
	} {
		cfg.Topology = topo
		res, err := chipletnet.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14v  avg latency %6.1f cycles   p99 %5.0f   accepted %.3f   %.2f pJ/bit\n",
			topo, res.AvgLatency, res.P99Latency, res.AcceptedFlitsPerNodeCycle, res.EnergyPJPerBit)
	}

	fmt.Println()
	fmt.Println("The hypercube interconnection of the same chiplets cuts latency and")
	fmt.Println("energy by replacing long multi-chiplet mesh detours with log2(N)")
	fmt.Println("chiplet-level hops (paper §VII-A).")
}
