// Design-space exploration: the paper is a *methodology* for designing
// chiplet interconnects. Given a fixed budget of 16 identical chiplets and
// a target workload, this example evaluates every interconnection the
// methodology supports — flat 2D-mesh, 2D/3D chiplet mesh, hypercube,
// dragonfly-style full connection on a subset, and a tree — then ranks
// them by sustainable injection rate, zero-load latency and transport
// energy, the three axes of §VII.
package main

import (
	"fmt"
	"log"
	"sort"

	"chipletnet"
)

type candidate struct {
	name string
	topo chipletnet.Topology

	satRate  float64
	zeroLoad float64
	energy   float64
}

func main() {
	candidates := []candidate{
		{name: "flat 2D-mesh 4x4", topo: chipletnet.MeshTopology(4, 4)},
		{name: "chiplet 2D-mesh 4x4", topo: chipletnet.NDMeshTopology(4, 4)},
		{name: "chiplet 3D-mesh 4x2x2", topo: chipletnet.NDMeshTopology(4, 2, 2)},
		{name: "hypercube 2^4", topo: chipletnet.HypercubeTopology(4)},
		{name: "tree fanout-4", topo: chipletnet.TreeTopology(16, 4)},
	}

	fmt.Println("exploring interconnects for a 16-chiplet budget (uniform traffic)...")
	for i := range candidates {
		c := &candidates[i]
		base := chipletnet.DefaultConfig()
		base.Topology = c.topo
		base.WarmupCycles = 400
		base.MeasureCycles = 2000

		// Zero-load latency and energy at a whisper of traffic.
		light := base
		light.InjectionRate = 0.02
		res, err := chipletnet.Run(light)
		if err != nil {
			log.Fatal(err)
		}
		c.zeroLoad = res.AvgLatency
		c.energy = res.EnergyPJPerBit

		// Sustainable load via binary search.
		c.satRate, err = chipletnet.SaturationRate(base, 0.05, 1.5, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  measured %-22s sat %.2f  zero-load %5.1f cyc  %5.2f pJ/bit\n",
			c.name, c.satRate, c.zeroLoad, c.energy)
	}

	// Rank: saturation first, zero-load latency as tie-breaker.
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].satRate != candidates[j].satRate {
			return candidates[i].satRate > candidates[j].satRate
		}
		return candidates[i].zeroLoad < candidates[j].zeroLoad
	})

	fmt.Println("\nranking (best first):")
	for i, c := range candidates {
		fmt.Printf("  %d. %-22s saturation %.2f flits/node/cycle, %5.1f cycles, %5.2f pJ/bit\n",
			i+1, c.name, c.satRate, c.zeroLoad, c.energy)
	}
	fmt.Println("\nAll of these reuse the identical 4x4-NoC chiplet — only the")
	fmt.Println("software-defined interface grouping and the package wiring differ.")
}
