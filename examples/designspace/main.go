// Design-space exploration: the paper is a *methodology* for designing
// chiplet interconnects, and internal/dse turns it into an automated
// designer. Given a fixed budget of 16 identical chiplets, declare the
// constraints — candidate topology families, routing modes, interleaving
// grains, a per-chiplet pin budget — and the engine enumerates every
// feasible design, rejects the deadlock-prone ones with the static
// verifier before a single cycle is simulated, measures the survivors,
// and extracts the exact Pareto frontier over sustainable injection
// rate, zero-load latency and transport energy (the three axes of
// §VII).
//
// cmd/chipletdse is the command-line face of the same pipeline, with a
// persistent evaluation cache and parallel evaluation; this example
// shows the library flow.
package main

import (
	"fmt"
	"log"

	"chipletnet/internal/dse"
)

func main() {
	// The constraints: 16 chiplets, the full topology and routing axes
	// (including the deliberately deadlock-prone equal-channel mode the
	// verifier exists to catch), and a pin budget that every 4x4-NoC
	// design fits. Everything left zero takes the documented default.
	space := dse.Space{
		Chiplets:      16,
		Topologies:    []string{"mesh", "ndmesh", "hypercube", "tree"},
		Interleavings: []string{"none", "message"},
		PinBudgetBits: 1024, // 16 cross ports x 2 flits/cycle x 32 bits
	}
	params := dse.DefaultParams()

	// A memory-only cache keeps the example self-contained; pass a file
	// path (as cmd/chipletdse -cache does) to persist evaluations across
	// runs and resume interrupted explorations.
	cache, err := dse.OpenCache("")
	if err != nil {
		log.Fatal(err)
	}
	defer cache.Close()

	fmt.Println("exploring interconnects for a 16-chiplet budget (uniform traffic)...")
	outcome, err := dse.Explore(space, params, cache)
	if err != nil {
		log.Fatal(err)
	}
	plan := outcome.Plan
	fmt.Printf("  %d candidates: %d statically pruned, %d rejected by the deadlock pre-flight, %d measured\n",
		len(plan.Candidates)+len(plan.Rejected), len(plan.Pruned), len(plan.Rejected), outcome.Simulated)
	for _, r := range plan.Rejected {
		fmt.Printf("  rejected before simulation: %s\n", r.Name)
	}

	fmt.Println("\nPareto frontier (saturation max, zero-load latency min, energy min):")
	for i, r := range outcome.Frontier {
		fmt.Printf("  %d. %-42s sat %.2f flits/node/cycle, %5.1f cycles, %5.2f pJ/bit\n",
			i+1, r.Name, r.SatRate, r.ZeroLoadLatency, r.EnergyPJPerBit)
	}

	fmt.Println("\nAll of these reuse the identical 4x4-NoC chiplet — only the")
	fmt.Println("software-defined interface grouping and the package wiring differ.")
}
