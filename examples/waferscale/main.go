// Wafer-scale locality: Cerebras-style systems interconnect hundreds of
// dies into one big 2D mesh, and — as the paper's background observes —
// "as the network diameter is so large, they have to keep the
// communication as localized as possible" (§II-B). This example measures
// why: on 64 chiplets, the flat 2D-mesh is competitive when traffic stays
// in the neighborhood, but collapses against the hypercube the moment the
// workload communicates globally.
package main

import (
	"fmt"
	"log"

	"chipletnet"
)

func main() {
	topos := []chipletnet.Topology{
		chipletnet.MeshTopology(8, 8),
		chipletnet.HypercubeTopology(6),
	}

	fmt.Println("64 chiplets, 0.35 flits/node/cycle; cells: avg latency / accepted (*=saturated)")
	fmt.Printf("%-22s %24s %24s\n", "traffic", "flat 2D-mesh", "hypercube")

	for _, pattern := range []string{"neighbor", "uniform", "bit-complement"} {
		fmt.Printf("%-22s", pattern)
		for _, topo := range topos {
			cfg := chipletnet.DefaultConfig()
			cfg.Topology = topo
			cfg.Pattern = pattern
			cfg.InjectionRate = 0.35
			cfg.WarmupCycles = 500
			cfg.MeasureCycles = 2500
			res, err := chipletnet.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			mark := " "
			if res.Saturated() {
				mark = "*"
			}
			fmt.Printf(" %12.1f / %.3f%s", res.AvgLatency, res.AcceptedFlitsPerNodeCycle, mark)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Localized (neighbor) traffic hides the mesh's O(sqrt N) diameter;")
	fmt.Println("global patterns (uniform, bit-complement) expose it. The hypercube")
	fmt.Println("built from the same chiplets removes the locality requirement.")
}
