// Network interleaving (paper §V): a software-defined interface group
// bundles several physical chiplet-to-chiplet links, but a conventional
// message streams over just one of them. This example measures, on the
// bandwidth-constrained 64-chiplet hypercube, how spreading traffic across
// the group — per message (coarse) or per packet (fine) — changes latency
// and sustained throughput, reproducing the Fig. 16 comparison in miniature.
package main

import (
	"fmt"
	"log"

	"chipletnet"
)

func main() {
	fmt.Println("64-chiplet hypercube, off-chip links at half the on-chip bandwidth")
	fmt.Println("cells: avg latency in cycles / accepted flits/node/cycle (* = saturated)")
	fmt.Printf("%-8s %20s %20s %20s\n", "load", "no interleave", "message-level", "packet-level")

	for _, rate := range []float64{0.2, 0.5, 0.8} {
		fmt.Printf("%-8.2f", rate)
		for _, il := range []string{"none", "message", "packet"} {
			cfg := chipletnet.DefaultConfig()
			cfg.Topology = chipletnet.HypercubeTopology(6)
			cfg.Interleave = il
			cfg.InjectionRate = rate
			cfg.WarmupCycles = 500
			cfg.MeasureCycles = 2500
			res, err := chipletnet.Run(cfg)
			if err != nil {
				log.Fatal(err)
			}
			mark := " "
			if res.Saturated() {
				mark = "*"
			}
			fmt.Printf(" %10.1f / %.3f%s", res.AvgLatency, res.AcceptedFlitsPerNodeCycle, mark)
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Without interleaving, one physical link per group carries all the")
	fmt.Println("traffic and the rest idle; packet-level (fine-grained) interleaving")
	fmt.Println("extracts the most bandwidth at the cost of per-packet header tags.")
}
