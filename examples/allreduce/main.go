// All-reduce on chiplets: distributed DNN training spends much of its time
// in gradient all-reduce, and the paper motivates chiplet interconnects by
// exactly this collective traffic (§II-B). This example runs two classic
// all-reduce algorithms on the flat-mesh and hypercube interconnections of
// the same 16 chiplets, across small (latency-bound) and large
// (bandwidth-bound) vectors. Ring all-reduce is bandwidth-optimal but
// serializes 2(n-1) steps; recursive doubling needs only log2(n) rounds,
// each of which maps onto exactly one hypercube dimension.
package main

import (
	"fmt"
	"log"

	"chipletnet"
)

func main() {
	fmt.Println("all-reduce over 16 chiplets (64 cores); completion time in cycles")
	fmt.Printf("%-10s %-30s %14s %14s\n", "vector", "algorithm", "flat 2D-mesh", "hypercube")

	for _, vectorFlits := range []int{64, 2048} {
		for _, kind := range []string{"allreduce-ring", "allreduce-recursive-doubling"} {
			fmt.Printf("%-10d %-30s", vectorFlits, kind)
			for _, topo := range []chipletnet.Topology{
				chipletnet.MeshTopology(4, 4),
				chipletnet.HypercubeTopology(4),
			} {
				cfg := chipletnet.DefaultConfig()
				cfg.Topology = topo
				res, err := chipletnet.RunCollective(cfg, chipletnet.Collective{
					Kind:      kind,
					DataFlits: vectorFlits,
				})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf(" %14d", res.CompletionCycles)
			}
			fmt.Println()
		}
	}

	fmt.Println()
	fmt.Println("Small vectors are latency-bound: recursive doubling's log2(n) rounds")
	fmt.Println("win, and the hypercube accelerates them further because every XOR")
	fmt.Println("partner is one chiplet hop away. Large vectors are bandwidth-bound:")
	fmt.Println("the chunked ring pipeline wins regardless of topology.")
}
