// Faulttolerance: run the paper's headline hypercube under hostile
// conditions — bit errors on every die-to-die link plus a permanent
// interface failure mid-run — and show that the network degrades instead
// of failing: corrupted flits are retransmitted link-locally, traffic
// re-weights onto the surviving interfaces of the killed link's group, the
// degraded topology is re-certified deadlock-free on the fly, and not a
// single packet is lost or duplicated.
package main

import (
	"fmt"
	"log"

	"chipletnet"
)

func main() {
	cfg := chipletnet.DefaultConfig()
	cfg.Topology = chipletnet.HypercubeTopology(4) // 16 chiplets
	cfg.InjectionRate = 0.3
	cfg.WarmupCycles = 500
	cfg.MeasureCycles = 2500
	cfg.DrainCycles = 50000 // let the network empty so completeness is checkable
	cfg.CheckCredits = true // audit credit conservation every cycle

	// A healthy run first, for comparison.
	healthy, err := chipletnet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Now the hostile one: BER 1e-4 on the die-to-die links, and kill the
	// first inter-chiplet channel a third of the way into the run.
	sys, err := chipletnet.Build(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pair := sys.Topo.CrossPairs()[0]
	cfg.Fault.BER = 1e-4
	cfg.Fault.Kill = []chipletnet.FaultKill{{Cycle: 1000, A: pair.A, B: pair.B}}

	res, err := chipletnet.Run(cfg)
	if err != nil {
		log.Fatal(err) // typed: fault.ErrPartitioned / ErrDegradedUnsafe
	}
	st := res.FaultStats

	fmt.Println("16-chiplet hypercube @ 0.3 flits/node/cycle, BER 1e-4, one interface killed")
	fmt.Println()
	fmt.Printf("  healthy:   avg latency %6.1f cycles, %d packets delivered\n",
		healthy.AvgLatency, healthy.DeliveredPackets)
	fmt.Printf("  degraded:  avg latency %6.1f cycles, %d packets delivered\n",
		res.AvgLatency, st.DeliveredPackets)
	fmt.Println()
	fmt.Printf("  layer 1 (link retransmission): %d bundles corrupted, %d retransmissions\n",
		st.CorruptedBundles, st.Retransmissions)
	fmt.Printf("  layer 2 (graceful degradation): %d link killed, %d packets rerouted\n",
		st.LinksKilled, st.ReroutedPackets)
	fmt.Printf("  delivery: %d lost, %d duplicated, drained=%v\n",
		st.LostPackets, st.DuplicatePackets, res.Drained)
	fmt.Println()
	fmt.Println("fault event log:")
	for _, ev := range res.FaultEvents {
		if ev.Kind == "corrupt" {
			continue // the structural story only
		}
		fmt.Printf("  cycle %-6d %-20s %s\n", ev.Cycle, ev.Kind, ev.Detail)
	}
}
