package chipletnet

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

func ctxTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Topology = Topology{Kind: "mesh", Dims: []int{2, 2}}
	cfg.ChipletW, cfg.ChipletH = 3, 3
	cfg.InjectionRate = 0.1
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 400
	return cfg
}

func TestRunManyCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := []Config{ctxTestConfig(), ctxTestConfig()}
	_, err := RunManyCtx(ctx, cfgs)
	if err == nil {
		t.Fatal("RunManyCtx under a pre-canceled context returned nil error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("error does not wrap ErrCanceled: %v", err)
	}
}

func TestRunEachCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfgs := []Config{ctxTestConfig(), ctxTestConfig(), ctxTestConfig()}
	results, errs := RunEachCtx(ctx, cfgs)
	if len(results) != len(cfgs) || len(errs) != len(cfgs) {
		t.Fatalf("got %d results / %d errs, want %d each", len(results), len(errs), len(cfgs))
	}
	// Every configuration was skipped before starting, and each reports
	// the typed cancellation individually.
	for i, e := range errs {
		if !errors.Is(e, ErrCanceled) {
			t.Errorf("errs[%d] does not wrap ErrCanceled: %v", i, e)
		}
		if results[i].DeliveredPackets != 0 {
			t.Errorf("errs[%d]: skipped run delivered %d packets, want 0", i, results[i].DeliveredPackets)
		}
	}
}

func TestRunManyCtxCancelMidRun(t *testing.T) {
	// A window long enough that cancellation always lands mid-simulation.
	cfg := ctxTestConfig()
	cfg.MeasureCycles = 50_000_000
	cfg.DeadlockThreshold = 0

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunManyCtx(ctx, []Config{cfg})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("mid-run cancel error does not wrap ErrCanceled: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunManyCtx did not return promptly after cancel")
	}
}

func TestRunEachCtxCancelSkipsPending(t *testing.T) {
	// One long run followed by many queued ones: canceling while the
	// first runs must abort it AND skip the not-yet-started rest, each
	// with the typed error.
	long := ctxTestConfig()
	long.MeasureCycles = 50_000_000
	long.DeadlockThreshold = 0
	cfgs := make([]Config, 64)
	for i := range cfgs {
		cfgs[i] = long
	}

	ctx, cancel := context.WithCancel(context.Background())
	type outcome struct {
		results []Result
		errs    []error
	}
	done := make(chan outcome, 1)
	go func() {
		r, e := RunEachCtx(ctx, cfgs)
		done <- outcome{r, e}
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case out := <-done:
		for i, e := range out.errs {
			if !errors.Is(e, ErrCanceled) {
				t.Errorf("errs[%d] does not wrap ErrCanceled: %v", i, e)
			}
		}
	case <-time.After(30 * time.Second):
		t.Fatal("RunEachCtx did not return promptly after cancel")
	}
}

func TestRunManyCtxBackgroundMatchesRunMany(t *testing.T) {
	// A background (never-canceled) context must not perturb results:
	// the context path only observes Done() at cycle boundaries, so a
	// completed run is bit-identical to an uncontrolled one.
	cfg := ctxTestConfig()
	plain, err := RunMany([]Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := RunManyCtx(context.Background(), []Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain[0], ctxed[0]) {
		t.Errorf("background-context run differs from plain run:\n got %+v\nwant %+v", ctxed[0], plain[0])
	}
}
