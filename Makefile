GO ?= go

.PHONY: build test vet lint check figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

lint:
	$(GO) run ./cmd/chipletlint ./...

# check is the pre-PR gate: vet, build, the full test suite under the race
# detector, and the determinism linter.
check: vet build
	$(GO) test -race ./...
	$(GO) run ./cmd/chipletlint ./...

figures:
	$(GO) run ./cmd/chipletfig -scale quick -out results all
