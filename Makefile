GO ?= go

.PHONY: build test test-fault test-checkpoint vet lint check figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# test-fault runs the fault-injection and link-reliability matrix under the
# race detector: the reliability protocol unit tests, the killed-link
# per-topology table, the hypercube acceptance scenario, and the seed corpus
# of the fault-schedule fuzz target.
test-fault:
	$(GO) test -race -run 'Rel|Fault|Credit' ./internal/router ./internal/fault .
	$(GO) test -race -run FuzzFaultSchedule .

lint:
	$(GO) run ./cmd/chipletlint ./...

# test-checkpoint runs the checkpoint/restore and crash-safe-campaign
# matrix under the race detector: bit-identical resume across topologies
# and fault schedules, typed rejection of damaged snapshot files, the
# cross-GOMAXPROCS determinism golden test, the checkpoint fuzz seed
# corpus, the campaign journal, and the campaign supervisor.
test-checkpoint:
	$(GO) test -race -run 'Checkpoint|Determinism|RunControl|Sweep' .
	$(GO) test -race -run FuzzCheckpointRoundTrip .
	$(GO) test -race -run 'Journal|Campaign' ./internal/experiments ./cmd/chipletfig

# check is the pre-PR gate: vet, build, the full test suite under the race
# detector, and the determinism linter.
check: vet build test-fault test-checkpoint
	$(GO) test -race ./...
	$(GO) run ./cmd/chipletlint ./...

figures:
	$(GO) run ./cmd/chipletfig -scale quick -out results all
