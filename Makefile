GO ?= go

.PHONY: build test test-fault test-checkpoint test-equiv test-dse test-daemon test-coordinator test-workload bench-json bench-dse-json bench-compiled bench-islands bench-workload vet lint check figures

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# test-fault runs the fault-injection and link-reliability matrix under the
# race detector: the reliability protocol unit tests, the killed-link
# per-topology table, the hypercube acceptance scenario, and the seed corpus
# of the fault-schedule fuzz target.
test-fault:
	$(GO) test -race -run 'Rel|Fault|Credit' ./internal/router ./internal/fault .
	$(GO) test -race -run FuzzFaultSchedule .

lint:
	$(GO) run ./cmd/chipletlint ./...

# test-checkpoint runs the checkpoint/restore and crash-safe-campaign
# matrix under the race detector: bit-identical resume across topologies
# and fault schedules, typed rejection of damaged snapshot files, the
# cross-GOMAXPROCS determinism golden test, the checkpoint fuzz seed
# corpus, the campaign journal, and the campaign supervisor.
test-checkpoint:
	$(GO) test -race -run 'Checkpoint|Determinism|RunControl|Sweep' .
	$(GO) test -race -run FuzzCheckpointRoundTrip .
	$(GO) test -race -run 'Journal|Campaign' ./internal/experiments ./cmd/chipletfig

# test-equiv runs the engine-equivalence gates under the race detector:
# the three-way differential matrix (reference stepper x active-set
# engine x parallel-islands engine at K in {1,2,4,NumCPU} — all topology
# kinds x routing modes, interpreted and compiled, x interleavings x
# fault schedules), cross-engine checkpoint interchange (islands
# snapshots resume under active and vice versa), the island-partition
# invariant seed corpus, and the islands GOMAXPROCS determinism golden
# test (the islands barrier is the first intra-run concurrency in the
# core engine, so the whole matrix runs -race); then the zero-alloc and
# active-set invariant tests without it (AllocsPerRun is meaningless
# under -race), and 30-second runs of the engine-equivalence and
# island-partition fuzz targets. The CompiledEngineEquivalence and
# CompiledRefusesUncertified tests match the EngineEquivalence pattern
# by substring.
test-equiv:
	$(GO) test -race -timeout 30m -run 'EngineEquivalence|EngineCheckpoint|ResetBitIdentical|ActiveSetMatchesReference|CompiledRefusesUncertified|IslandPartition|IslandsDeterminism' . ./internal/router
	$(GO) test -run 'ZeroAlloc|ActiveSet|DrainedFabric|ResetRestores|AuditCredits' ./internal/router
	$(GO) test -fuzz FuzzEngineEquivalence -fuzztime 30s -run FuzzEngineEquivalence .
	$(GO) test -fuzz FuzzIslandPartition -fuzztime 30s -run FuzzIslandPartition .

# test-dse runs the design-space-exploration matrix under the race
# detector — enumeration/pruning determinism, the verify pre-flight
# rejections, cache round-trip and crash tolerance, the cold-then-warm
# byte-identical-report gate, the chipletdse flag parsers — plus the
# Pareto-frontier invariant fuzz seed corpus.
test-dse:
	$(GO) test -race ./internal/dse ./cmd/chipletdse
	$(GO) test -race -run FuzzParetoFrontier ./internal/dse

# test-daemon runs the campaign-daemon matrix under the race detector:
# the service core (journal replay, drain/requeue, deadline/retry/cancel
# classification, HTTP endpoints), the backoff policy, the self-healing
# JSONL loader, the sharded-cache merge gate, batch-cancellation through
# the module root, and the chipletd process-level acceptance tests —
# SIGKILL kill-resume and SIGTERM drain against a real daemon.
test-daemon:
	$(GO) test -race ./internal/service/... ./internal/jsonl ./cmd/chipletd
	$(GO) test -race -run 'RunManyCtx|RunEachCtx' .
	$(GO) test -race -run 'Shard|Merge|Quarantine' ./internal/dse

# test-coordinator runs the multi-host fleet matrix under the race
# detector: the coord package (lease expiry/fencing, journal replay
# across coordinator restarts, dead-fleet degradation, merge-conflict
# poisoning, distributed-vs-sequential frontier identity over real HTTP
# workers) plus the chipletd chaos acceptance test — a real worker
# daemon SIGKILLed mid-DSE, with the frontier still byte-identical to
# the single-machine run and zero duplicate simulations beyond the
# killed worker's unreported tail.
test-coordinator:
	$(GO) test -race -timeout 20m ./internal/service/coord
	$(GO) test -race -timeout 20m -run 'Coordinator|SigtermRequeues' ./cmd/chipletd

# test-workload runs the trace/replay/QoS matrix under the race detector:
# the trace format round-trip and typed-error table, the external-trace
# importer, the live-run recorder, the causal replayer and AI-scale-out
# generator (snapshot round-trips included), the per-class QoS statistics
# and tiny-sample percentile tables, and the root-level acceptance gates —
# a recorded hypercube trace replaying bit-identically under all three
# cycle engines and across mid-replay cross-engine checkpoint/resume.
# Finishes by replaying the trace-round-trip fuzz seed corpus.
test-workload:
	$(GO) test -race -run 'Trace|Import|Record|Replay|AIScaleOut|Percentile|ClassS|Workload|ParseFlag|SpecHash|Split' ./internal/workload ./internal/traffic ./internal/stats .
	$(GO) test -race -run FuzzTraceRoundTrip ./internal/traffic

# bench-dse-json regenerates the committed design-space-exploration
# benchmark baseline (BENCH_dse.json): cache-cold exploration, cache-warm
# exploration (zero simulations), and the cache-hit micro path.
bench-dse-json:
	$(GO) run ./cmd/chipletbench -suite dse -count 2 -out BENCH_dse.json

# bench-json regenerates the committed hot-path benchmark baseline
# (BENCH_hotpath.json): every workload under both cycle engines.
bench-json:
	$(GO) run ./cmd/chipletbench -count 2 -out BENCH_hotpath.json

# bench-compiled regenerates the committed compiled-routing benchmark
# baseline (BENCH_compiled.json): steady-state simulation on certified
# flat-array tables vs the per-hop interpreter, plus the Build-time
# certification + compilation cost.
bench-compiled:
	$(GO) run ./cmd/chipletbench -suite compiled -count 2 -out BENCH_compiled.json

# bench-islands regenerates the committed parallel-islands benchmark
# baseline (BENCH_islands.json): the 256-chiplet steady-state workload
# under the islands engine at K=4 and K=1 vs the serial active-set
# engine. The 1.5x K=4 speedup gate applies on machines with >= 4 CPUs
# and degrades to the parity floor below that (the JSON Note records the
# CPU count the committed numbers were taken on).
bench-islands:
	$(GO) run ./cmd/chipletbench -suite islands -count 2 -out BENCH_islands.json

# bench-workload regenerates the committed trace-replay benchmark
# baseline (BENCH_workload.json): a synthetic hypercube run vs a causal
# replay of its own recorded trace (the 0.84 relative floor bounds
# replay overhead at ~1.2x), plus the AI-scale-out generator as an
# allocation canary.
bench-workload:
	$(GO) run ./cmd/chipletbench -suite workload -count 2 -out BENCH_workload.json

# check is the pre-PR gate: go vet, build, the full test suite under the
# race detector (including the -race equivalence matrices of test-equiv),
# the determinism linter over ./..., and the benchmark gates (the
# active-set engine must hold its speedup over the reference stepper, and
# both suites their allocs/op against the committed baselines).
check: vet build test-fault test-checkpoint test-equiv test-dse test-daemon test-coordinator test-workload
	$(GO) test -race -timeout 20m ./...
	$(GO) run ./cmd/chipletlint ./...
	$(GO) run ./cmd/chipletbench -check BENCH_hotpath.json
	$(GO) run ./cmd/chipletbench -suite compiled -check BENCH_compiled.json
	$(GO) run ./cmd/chipletbench -suite islands -count 2 -check BENCH_islands.json
	$(GO) run ./cmd/chipletbench -suite workload -count 2 -check BENCH_workload.json

figures:
	$(GO) run ./cmd/chipletfig -scale quick -out results all
