package chipletnet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"chipletnet/internal/chiplet"
	"chipletnet/internal/fault"
	"chipletnet/internal/router"
	"chipletnet/internal/routing"
	"chipletnet/internal/stats"
	"chipletnet/internal/topology"
)

// System is a built but not-yet-run network: the topology, fabric and
// routing, ready for simulation or inspection (diameters, link counts).
type System struct {
	Cfg  Config
	Topo *topology.System
}

// Engine names a cycle-engine implementation for Fabric.Step. All
// engines are observationally identical — bit-identical results, fault
// logs and checkpoints (enforced three-ways by engine_equiv_test.go) —
// and differ only in speed.
type Engine string

const (
	// EngineActive is the default serial active-set engine (PR 4).
	EngineActive Engine = "active"
	// EngineReference is the naive reference stepper: the oracle for
	// the differential-equivalence suite and for bisecting engine bugs.
	EngineReference Engine = "reference"
	// EngineIslands is the parallel-islands engine: the fabric is
	// partitioned into contiguous-chiplet islands stepped on worker
	// goroutines with a deterministic boundary exchange per cycle.
	// IslandCount sets the partition size.
	EngineIslands Engine = "islands"
)

// UseEngine selects the cycle engine for every subsequently built
// System. This is deliberately a package variable rather than a Config
// field: Config is embedded verbatim in checkpoint files, and the
// engine choice must not leak into them (snapshots are
// engine-independent — a checkpoint taken under one engine resumes
// under any other).
var UseEngine = EngineActive

// IslandCount is the island count K for EngineIslands; <= 0 means one
// island per available CPU (GOMAXPROCS). K is clamped to the chiplet
// count at Build. RunMany divides its campaign worker budget by the
// effective K so intra-run and campaign-level parallelism share one
// CPU budget instead of oversubscribing.
var IslandCount int

// ParseEngine parses an -engine flag value: "active", "reference",
// "islands", or "islands:K" for an explicit island count.
func ParseEngine(s string) (Engine, int, error) {
	switch {
	case s == string(EngineActive):
		return EngineActive, 0, nil
	case s == string(EngineReference):
		return EngineReference, 0, nil
	case s == string(EngineIslands):
		return EngineIslands, 0, nil
	case len(s) > len("islands:") && s[:len("islands:")] == "islands:":
		var k int
		if _, err := fmt.Sscanf(s[len("islands:"):], "%d", &k); err != nil || k < 1 {
			return "", 0, fmt.Errorf("chipletnet: bad island count in -engine %q: want islands:K with K >= 1", s)
		}
		return EngineIslands, k, nil
	default:
		return "", 0, fmt.Errorf("chipletnet: bad engine %q: want active, reference, islands or islands:K", s)
	}
}

// SetEngine parses an -engine flag value and installs it as the
// process-wide engine selection (UseEngine, IslandCount).
func SetEngine(s string) error {
	e, k, err := ParseEngine(s)
	if err != nil {
		return err
	}
	UseEngine = e
	IslandCount = k
	return nil
}

// effectiveIslands returns the island count EngineIslands will request
// at Build under the current settings.
func effectiveIslands() int {
	if k := IslandCount; k > 0 {
		return k
	}
	return runtime.GOMAXPROCS(0)
}

// Reset returns a built, already-simulated system to its pre-simulation
// state — buffers, credits, links, counters and engine scheduling as
// freshly built, with all allocated capacity retained — so the same
// topology and routing can host another run without rebuilding (e.g.
// SaturationRate's bisection probes). A reset run is bit-identical to a
// run on a fresh Build of the same Config. Not legal after runs whose
// fault schedule mutates structure (Kill or Degrade events): degraded
// bandwidth and condemned group membership are not restored.
func (s *System) Reset() {
	s.Topo.Fabric.Reset()
}

// Build constructs the system described by cfg: routers, links, labels,
// groups, chiplet interconnection and routing algorithm.
func Build(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geo, err := chiplet.New(cfg.ChipletW, cfg.ChipletH)
	if err != nil {
		return nil, err
	}
	lp := topology.LinkParams{
		VCs:               cfg.VCs,
		InternalBufFlits:  cfg.InternalBufFlits,
		InterfaceBufFlits: cfg.InterfaceBufFlits,
		OnChipBW:          cfg.OnChipBW,
		OffChipBW:         cfg.OffChipBW,
		OnChipLatency:     cfg.OnChipLatency,
		OffChipLatency:    cfg.OffChipLatency,
		EjectBW:           cfg.EjectBW,
	}
	var sys *topology.System
	switch cfg.Topology.Kind {
	case "mesh":
		sys, err = topology.BuildFlatMesh(geo, cfg.Topology.Dims[0], cfg.Topology.Dims[1], lp)
	case "ndmesh":
		sys, err = topology.BuildNDMesh(geo, cfg.Topology.Dims, lp)
	case "ndtorus":
		sys, err = topology.BuildNDTorus(geo, cfg.Topology.Dims, lp)
	case "hypercube":
		sys, err = topology.BuildHypercube(geo, cfg.Topology.Dims[0], lp)
	case "dragonfly":
		sys, err = topology.BuildDragonfly(geo, cfg.Topology.Dims[0], lp)
	case "tree":
		sys, err = topology.BuildTree(geo, cfg.Topology.Dims[0], cfg.Topology.Dims[1], lp)
	case "custom":
		var n int
		var edges [][2]int
		if n, edges, err = cfg.Topology.customEdges(); err == nil {
			sys, err = topology.BuildCustom(geo, n, edges, lp)
		}
	default:
		return nil, fmt.Errorf("chipletnet: unknown topology kind %q", cfg.Topology.Kind)
	}
	if err != nil {
		return nil, err
	}
	if cfg.CrossLinkFaultFraction > 0 {
		if cfg.Topology.Kind == "mesh" {
			return nil, fmt.Errorf("chipletnet: the flat mesh baseline has no grouped link redundancy to absorb faults")
		}
		if _, err := sys.FailRandomCrossLinks(cfg.CrossLinkFaultFraction, cfg.Seed); err != nil {
			return nil, err
		}
	}
	rt, err := routing.New(sys, cfg.routingOptions())
	if err != nil {
		return nil, err
	}
	sys.Fabric.Routing = rt
	if cfg.CompiledRouting {
		comp, _, cerr := routing.Compile(sys)
		if cerr != nil {
			return nil, fmt.Errorf("chipletnet: %w", cerr)
		}
		sys.Fabric.Routing = comp
	}
	sys.Fabric.SafeUnsafe = cfg.Routing == RoutingSafeUnsafe
	sys.Fabric.OffChipVAExtra = cfg.OffChipVAExtra
	sys.Fabric.DeadlockThreshold = cfg.DeadlockThreshold
	sys.Fabric.UseReference = UseEngine == EngineReference
	if UseEngine == EngineIslands {
		chipletOf := make([]int, len(sys.Nodes))
		for i, n := range sys.Nodes {
			chipletOf[i] = n.Chiplet
		}
		sys.Fabric.EnableIslands(effectiveIslands(), chipletOf)
	}
	return &System{Cfg: cfg, Topo: sys}, nil
}

// Result is the outcome of one simulation run.
type Result struct {
	Cfg Config
	stats.Summary
	// OfferedPackets counts packets created during measurement.
	OfferedPackets int
	// OfferedRate echoes the configured injection rate (flits/node/cycle).
	OfferedRate float64
	// EnergyPJPerBit is the §VII-A transport energy estimate from the
	// measured average hop counts.
	EnergyPJPerBit float64
	// Deadlocked reports that the progress watchdog fired; all other
	// figures are then meaningless. DeadlockReport is the watchdog's
	// diagnostic snapshot (blocked routers and VCs, oldest waiting
	// packet), nil when the run was live.
	Deadlocked     bool
	DeadlockReport *router.DeadlockReport
	// Endpoints is the number of traffic endpoints (core nodes).
	Endpoints int
	// AvgOffChipUtilization / PeakOffChipUtilization summarize how loaded
	// the chiplet-to-chiplet links were over the whole run (fraction of
	// link capacity; the bottleneck indicator of §VII-B).
	AvgOffChipUtilization  float64
	PeakOffChipUtilization float64
	// AvgOnChipUtilization is the same for on-chip links.
	AvgOnChipUtilization float64

	// Drained reports that the post-run drain phase (Config.DrainCycles)
	// emptied the network; InFlightAtEnd is the number of packets still in
	// the network when the simulation stopped.
	Drained       bool
	InFlightAtEnd int
	// TimedOut reports that the run was aborted by RunControl.Deadline;
	// DeadlockReport then holds the diagnostic snapshot of where traffic
	// was at the abort.
	TimedOut bool `json:",omitempty"`
	// FaultEvents is the fault event log and FaultStats the injection and
	// recovery summary; both nil unless fault injection was configured.
	FaultEvents []fault.Record `json:",omitempty"`
	FaultStats  *fault.Stats   `json:",omitempty"`
}

// Saturated reports whether the run shows saturation: accepted throughput
// falling more than 10% below the offered load (the slack absorbs
// end-of-window packets still in flight), or a deadlock report. The
// comparison uses the traffic the generator actually produced — at low
// rates and short windows the Bernoulli process can fall visibly short of
// the configured rate, which is not congestion.
func (r Result) Saturated() bool {
	if r.Deadlocked {
		return true
	}
	offered := r.OfferedRate
	if r.Cfg.MeasureCycles > 0 && r.Endpoints > 0 {
		actual := float64(r.OfferedPackets*r.Cfg.PacketFlits) /
			float64(r.Cfg.MeasureCycles) / float64(r.Endpoints)
		if actual < offered {
			offered = actual
		}
	}
	return r.AcceptedFlitsPerNodeCycle < 0.90*offered
}

// Run builds and simulates cfg and returns the measured statistics.
func Run(cfg Config) (Result, error) {
	sys, err := Build(cfg)
	if err != nil {
		return Result{}, err
	}
	return sys.Simulate()
}

// Simulate runs the configured workload on a built system. A System must
// not be simulated twice; rebuild for fresh runs.
func (s *System) Simulate() (Result, error) {
	return s.SimulateControlled(RunControl{})
}

// ErrCanceled: the run was aborted because its context was canceled.
// Configurations not yet started when the cancellation arrived are
// skipped; a running one stops at the next cycle boundary (its partial
// Result carries the usual diagnostic snapshot). Test with errors.Is.
var ErrCanceled = errors.New("chipletnet: run canceled")

// runMany is the shared parallel executor: it simulates every
// configuration on a GOMAXPROCS-bounded worker pool and returns
// per-configuration results and errors in input order (a panic in one
// run is recovered into that run's error). Each configuration gets its
// own Build, so no mutable state is shared between workers; output
// ordering is positional and therefore schedule-independent.
//
// The pool is island-aware: under EngineIslands each run brings its own
// K worker goroutines, so the campaign budget shrinks to
// GOMAXPROCS / K concurrent runs — campaign-level and intra-run
// parallelism share one CPU budget instead of oversubscribing.
func runMany(ctx context.Context, cfgs []Config) ([]Result, []error) {
	results := make([]Result, len(cfgs))
	errs := make([]error, len(cfgs))
	workers := runtime.GOMAXPROCS(0)
	if UseEngine == EngineIslands {
		if workers /= effectiveIslands(); workers < 1 {
			workers = 1
		}
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := range cfgs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("panic: %v", p)
				}
			}()
			results[i], errs[i] = runOne(ctx, cfgs[i])
		}(i)
	}
	wg.Wait()
	return results, errs
}

// runOne executes one configuration under ctx. Cancellation is observed
// at cycle boundaries only (through RunControl.Deadline), so it never
// perturbs simulated state: a run that completes before the cancel is
// indistinguishable from an uncontrolled one.
func runOne(ctx context.Context, cfg Config) (Result, error) {
	if ctx == nil || ctx.Done() == nil {
		return Run(cfg)
	}
	if ctx.Err() != nil {
		return Result{}, fmt.Errorf("%w: not started: %v", ErrCanceled, ctx.Err())
	}
	sys, err := Build(cfg)
	if err != nil {
		return Result{}, err
	}
	res, err := sys.SimulateControlled(RunControl{Deadline: ctx.Done()})
	if errors.Is(err, ErrTimeout) && ctx.Err() != nil {
		// The deadline channel was the context's: report the abort as a
		// cancellation, keeping the diagnostic partial Result.
		err = fmt.Errorf("%w: %v", ErrCanceled, ctx.Err())
	}
	return res, err
}

// RunMany builds and simulates every configuration, in parallel across
// CPUs, and returns the results in input order: results[i] belongs to
// cfgs[i] regardless of scheduling. On failure the partial results are
// returned alongside the joined per-configuration errors; results[i] is
// valid exactly when cfgs[i]'s run produced no error. This is the
// parallelism entry point for experiment campaigns — internal packages
// must not spawn goroutines (see cmd/chipletlint), so they hand their
// job lists here.
func RunMany(cfgs []Config) ([]Result, error) {
	return RunManyCtx(context.Background(), cfgs)
}

// RunManyCtx is RunMany under a context: canceling ctx aborts the whole
// batch cleanly — runs not yet started are skipped, running ones stop at
// their next cycle boundary — and every affected configuration reports
// an error wrapping ErrCanceled. This is how the campaign daemon's
// per-job deadlines and graceful drain reach into a worker pool
// mid-batch without losing the completed results.
func RunManyCtx(ctx context.Context, cfgs []Config) ([]Result, error) {
	results, errs := runMany(ctx, cfgs)
	for i, e := range errs {
		if e != nil {
			errs[i] = fmt.Errorf("chipletnet: config %d: %w", i, e)
		}
	}
	return results, errors.Join(errs...)
}

// RunEach is RunMany with per-configuration error reporting instead of a
// joined error: errs[i] is nil exactly when results[i] is valid, letting
// callers attach their own labels to failures.
func RunEach(cfgs []Config) (results []Result, errs []error) {
	return runMany(context.Background(), cfgs)
}

// RunEachCtx is RunEach under a context; see RunManyCtx for the
// cancellation semantics.
func RunEachCtx(ctx context.Context, cfgs []Config) (results []Result, errs []error) {
	return runMany(ctx, cfgs)
}

// Sweep runs cfg at every injection rate, in parallel across CPUs, and
// returns the results in rate order. A panic in one run is recovered into
// that rate's error instead of crashing the sweep. On failure the partial
// results are returned alongside the joined per-rate errors: results[i]
// is valid exactly when no error mentions rates[i] (a failed rate leaves
// its zero Result).
func Sweep(cfg Config, rates []float64) ([]Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfgs := make([]Config, len(rates))
	for i, r := range rates {
		cfgs[i] = cfg
		cfgs[i].InjectionRate = r
	}
	results, errs := runMany(context.Background(), cfgs)
	for i, e := range errs {
		if e != nil {
			errs[i] = fmt.Errorf("chipletnet: rate %g: %w", rates[i], e)
		}
	}
	if err := errors.Join(errs...); err != nil {
		return results, err
	}
	return results, nil
}

// SaturationRate binary-searches the maximum injection rate (flits/node/
// cycle) the configuration sustains without saturating, within tol.
//
// Bisection probes differ only in injection rate, so when the fault
// schedule contains no structure-mutating events (Kill, Degrade) the
// search builds the system once and reuses it across probes via Reset —
// each probe still bit-identical to a fresh Run at that rate.
func SaturationRate(cfg Config, lo, hi, tol float64) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	reuse := len(cfg.Fault.Kill) == 0 && len(cfg.Fault.Degrade) == 0
	var sys *System
	if reuse {
		var err error
		if sys, err = Build(cfg); err != nil {
			return 0, err
		}
	}
	ran := false
	stable := func(rate float64) (bool, error) {
		c := cfg
		c.InjectionRate = rate
		var res Result
		var err error
		if reuse {
			if ran {
				sys.Reset()
			}
			ran = true
			sys.Cfg = c
			res, err = sys.Simulate()
		} else {
			res, err = Run(c)
		}
		if err != nil {
			return false, err
		}
		return !res.Saturated(), nil
	}
	okLo, err := stable(lo)
	if err != nil {
		return 0, err
	}
	if !okLo {
		return 0, nil
	}
	okHi, err := stable(hi)
	if err != nil {
		return 0, err
	}
	if okHi {
		return hi, nil
	}
	for hi-lo > tol {
		mid := (lo + hi) / 2
		ok, err := stable(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}
