package chipletnet

import (
	"math"
	"testing"
)

// Timing audit (parallel-islands PR): every assertion in this file is a
// cycle-count or deterministic-metric bound — no wall-clock waits,
// sleeps or timeouts — so a slower run (e.g. -race with the islands
// engine's per-cycle barriers) cannot flake it. Keep it that way: new
// assertions must be phrased in simulated cycles, never real time.

// satCfg is a small fast workload for bisection edge cases.
func satCfg() Config {
	cfg := DefaultConfig()
	cfg.Topology = HypercubeTopology(3)
	cfg.WarmupCycles = 50
	cfg.MeasureCycles = 250
	cfg.DrainCycles = 30000
	return cfg
}

// TestSaturationRateEdgeCases covers the bisection's degenerate inputs:
// a lower bound that is already saturated (the all-saturated series —
// the search must report 0, not probe forever), an upper bound that is
// still stable (single-probe short circuit returning hi), and an invalid
// configuration surfacing the validation error instead of running.
func TestSaturationRateEdgeCases(t *testing.T) {
	cfg := satCfg()

	// Without a drain phase, end-of-window in-flight traffic counts
	// against accepted throughput, so overload rates register as
	// saturated even at this short window: with lo already saturated the
	// answer is 0 and no bisection happens.
	undrained := cfg
	undrained.DrainCycles = 0
	sat, err := SaturationRate(undrained, 1.0, 1.9, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if sat != 0 {
		t.Errorf("saturated lower bound: got %g, want 0", sat)
	}

	// Both bounds stable: the search returns hi without bisecting.
	sat, err = SaturationRate(cfg, 0.01, 0.05, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if sat != 0.05 {
		t.Errorf("stable upper bound: got %g, want hi=0.05", sat)
	}

	bad := cfg
	bad.VCs = 0
	if _, err := SaturationRate(bad, 0.1, 1.0, 0.1); err == nil {
		t.Error("invalid configuration did not surface a validation error")
	}
}

// TestSaturationRateWarmReuseMatchesColdRuns replays the warm-path
// bisection (Build once, Reset between probes) by hand with fresh Run
// calls: both searches must probe the same rates with the same verdicts
// and land on the same saturation estimate.
func TestSaturationRateWarmReuseMatchesColdRuns(t *testing.T) {
	cfg := satCfg()
	cfg.DrainCycles = 0 // mixed stable/saturated verdicts: a real bisection
	lo, hi, tol := 0.01, 1.9, 0.15

	warm, err := SaturationRate(cfg, lo, hi, tol)
	if err != nil {
		t.Fatal(err)
	}

	// The cold oracle: the same bisection, each probe a fresh Build+Run.
	stable := func(rate float64) bool {
		c := cfg
		c.InjectionRate = rate
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		return !res.Saturated()
	}
	cold := 0.0
	if stable(lo) {
		if stable(hi) {
			cold = hi
		} else {
			for hi-lo > tol {
				mid := (lo + hi) / 2
				if stable(mid) {
					lo = mid
				} else {
					hi = mid
				}
			}
			cold = lo
		}
	}
	if math.Abs(warm-cold) > 1e-12 {
		t.Errorf("warm-reuse bisection found %g, cold bisection %g", warm, cold)
	}
}

// TestSaturationRateColdPathWithKillSchedule: a structure-mutating fault
// schedule must force the rebuild-per-probe path (Reset cannot undo a
// kill) and still complete.
func TestSaturationRateColdPathWithKillSchedule(t *testing.T) {
	cfg := satCfg()
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pairs := sys.Topo.CrossPairs()
	if len(pairs) == 0 {
		t.Fatal("hypercube has no cross-chiplet pairs")
	}
	p := pairs[len(pairs)-1]
	cfg.Fault.Kill = []FaultKill{{Cycle: 100, A: p.A, B: p.B}}

	sat, err := SaturationRate(cfg, 0.01, 0.4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if sat <= 0 {
		t.Errorf("kill-schedule search found %g, want a positive stable rate", sat)
	}
	// The estimate must itself be stable under the same fault schedule.
	probe := cfg
	probe.InjectionRate = sat
	res, err := Run(probe)
	if err != nil {
		t.Fatal(err)
	}
	if res.Saturated() {
		t.Errorf("reported rate %g is itself saturated", sat)
	}
}
