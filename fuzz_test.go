package chipletnet

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"chipletnet/internal/checkpoint"
	"chipletnet/internal/rng"
	"chipletnet/internal/verify"
)

// TestRandomConfigurationsAreRobust drives the whole stack through a
// deterministic pseudo-random walk of the configuration space: any
// configuration that Build accepts must simulate without panic, without
// deadlock, and deliver traffic. Rejections are fine; crashes are not.
func TestRandomConfigurationsAreRobust(t *testing.T) {
	iterations := 60
	if testing.Short() {
		iterations = 20
	}
	r := rng.New(20260706)
	accepted := 0
	for i := 0; i < iterations; i++ {
		cfg := randomConfig(r)
		sys, err := Build(cfg)
		if err != nil {
			continue // invalid combinations may be rejected, not crash
		}
		accepted++
		res, err := sys.Simulate()
		if err != nil {
			t.Fatalf("config %d (%+v): %v", i, cfg.Topology, err)
		}
		if res.Deadlocked {
			t.Errorf("config %d deadlocked: topo=%v W=%d H=%d vcs=%d mode=%s pattern=%s il=%s",
				i, cfg.Topology, cfg.ChipletW, cfg.ChipletH, cfg.VCs, cfg.Routing, cfg.Pattern, cfg.Interleave)
		}
		if res.MeasuredPackets == 0 && cfg.InjectionRate > 0.05 {
			t.Errorf("config %d delivered nothing: topo=%v rate=%.2f", i, cfg.Topology, cfg.InjectionRate)
		}
	}
	if accepted < iterations/3 {
		t.Errorf("only %d of %d random configs accepted; generator too wild", accepted, iterations)
	}
}

// FuzzVerifyMatchesWatchdog fuzzes the static verifier against the runtime
// watchdog: for every random buildable configuration the verifier clears,
// a short saturating simulation must not trip the deadlock watchdog. (The
// converse is not checkable — a finite run missing a deadlock proves
// nothing — so the fuzz oracle is one-sided, matching the theory: the
// criterion is sufficient, not necessary.)
func FuzzVerifyMatchesWatchdog(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(20260806))
	f.Add(uint64(0xdeadbeef))
	f.Fuzz(func(t *testing.T, seed uint64) {
		cfg := randomConfig(rng.New(seed))
		cfg.InjectionRate = 0.9
		cfg.WarmupCycles = 200
		cfg.MeasureCycles = 1300
		cfg.DeadlockThreshold = 500
		sys, err := Build(cfg)
		if err != nil {
			t.Skip() // invalid combinations may be rejected, not crash
		}
		rep := sys.VerifyRouting(verify.Options{MaxDests: 16, MaxSources: 8})
		if rep.Err() != nil {
			t.Skip() // not certified: the runtime guarantee is out of scope
		}
		res, err := sys.Simulate()
		if err != nil {
			t.Fatalf("seed %d (%+v): %v", seed, cfg.Topology, err)
		}
		if res.Deadlocked {
			t.Errorf("seed %d: verifier passed but watchdog fired: topo=%v W=%d H=%d vcs=%d mode=%s pattern=%s",
				seed, cfg.Topology, cfg.ChipletW, cfg.ChipletH, cfg.VCs, cfg.Routing, cfg.Pattern)
		}
	})
}

// FuzzCheckpointRoundTrip fuzzes the resume guarantee over the random
// configuration space: interrupt a run at an arbitrary cycle, resume from
// the written checkpoint, and the finish must be bit-identical to the
// uninterrupted run — Result and error alike. Then flip one arbitrary
// byte of the checkpoint file: the load must fail with one of the typed
// checkpoint errors, never panic, never silently succeed.
func FuzzCheckpointRoundTrip(f *testing.F) {
	f.Add(uint64(1), int64(50), uint64(7))
	f.Add(uint64(20260806), int64(250), uint64(1000))
	f.Add(uint64(0xdeadbeef), int64(310), uint64(31))
	f.Fuzz(func(t *testing.T, seed uint64, stopCycle int64, corrupt uint64) {
		cfg := randomConfig(rng.New(seed))
		cfg.WarmupCycles = 60
		cfg.MeasureCycles = 240
		cfg.DrainCycles = 20000
		if seed%3 == 0 {
			cfg.Fault.BER = 5e-4
		}
		if _, err := Build(cfg); err != nil {
			t.Skip() // invalid combinations may be rejected, not crash
		}
		refRes, refErr := Run(cfg)
		stop := 1 + ((stopCycle%400)+400)%400 // within warm-up, measurement, or early drain

		path := filepath.Join(t.TempDir(), "fuzz.ckpt")
		sys, err := Build(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, err = sys.SimulateControlled(RunControl{CheckpointPath: path, InterruptAtCycle: stop})
		if !errors.Is(err, ErrInterrupted) {
			t.Skip() // run ended (error or empty drain) before the interrupt cycle
		}
		res, err := ResumeRun(path, RunControl{})
		if errText(err) != errText(refErr) {
			t.Fatalf("seed %d stop %d: resumed error %q, uninterrupted %q", seed, stop, errText(err), errText(refErr))
		}
		if got, want := resultJSON(t, res), resultJSON(t, refRes); got != want {
			t.Errorf("seed %d stop %d: resumed Result differs\n got: %s\nwant: %s", seed, stop, got, want)
		}

		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[corrupt%uint64(len(data))] ^= 0x01
		bad := filepath.Join(t.TempDir(), "bad.ckpt")
		if err := os.WriteFile(bad, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = ResumeRun(bad, RunControl{})
		if err == nil {
			t.Fatalf("seed %d: corrupted checkpoint (byte %d) loaded successfully", seed, corrupt%uint64(len(data)))
		}
		for _, typed := range []error{checkpoint.ErrNotCheckpoint, checkpoint.ErrVersion, checkpoint.ErrCorrupt, checkpoint.ErrMismatch} {
			if errors.Is(err, typed) {
				return
			}
		}
		t.Errorf("seed %d: corruption produced untyped error %v", seed, err)
	})
}

func randomConfig(r *rng.Rand) Config {
	cfg := DefaultConfig()
	cfg.ChipletW = 3 + r.Intn(4)
	cfg.ChipletH = 3 + r.Intn(4)
	switch r.Intn(7) {
	case 0:
		cfg.Topology = MeshTopology(1+r.Intn(3), 1+r.Intn(3))
	case 1:
		cfg.Topology = HypercubeTopology(1 + r.Intn(4))
	case 2:
		dims := make([]int, 1+r.Intn(3))
		for i := range dims {
			dims[i] = 2 + r.Intn(3)
		}
		cfg.Topology = NDMeshTopology(dims...)
	case 3:
		dims := make([]int, 1+r.Intn(2))
		for i := range dims {
			dims[i] = 3 + r.Intn(2)
		}
		cfg.Topology = NDTorusTopology(dims...)
	case 4:
		cfg.Topology = DragonflyTopology(2 * (2 + r.Intn(3)))
	case 5:
		cfg.Topology = TreeTopology(3+r.Intn(10), 1+r.Intn(3))
	case 6:
		n := 4 + r.Intn(4)
		var edges [][2]int
		for i := 1; i < n; i++ {
			edges = append(edges, [2]int{r.Intn(i), i}) // random connected tree
		}
		// A few extra edges for cycles.
		for k := 0; k < r.Intn(3); k++ {
			a, b := r.Intn(n), r.Intn(n)
			if a != b {
				edges = append(edges, [2]int{a, b})
			}
		}
		cfg.Topology = CustomTopology(n, edges)
		cfg.Routing = RoutingSafeUnsafe
	}
	if r.Intn(3) == 0 {
		cfg.Routing = RoutingSafeUnsafe
	}
	cfg.VCs = 2 + r.Intn(2)
	cfg.PacketFlits = []int{8, 16, 32}[r.Intn(3)]
	cfg.MsgPackets = 1 + r.Intn(4)
	cfg.InternalBufFlits = cfg.PacketFlits * (1 + r.Intn(2))
	cfg.InterfaceBufFlits = cfg.PacketFlits * (1 + r.Intn(3))
	cfg.OnChipBW = 1 + r.Intn(4)
	cfg.OffChipBW = 1 + r.Intn(4)
	cfg.OffChipLatency = 1 + r.Intn(10)
	cfg.EjectBW = 1 + r.Intn(4)
	cfg.Pattern = append(patternChoices(), "neighbor")[r.Intn(7)]
	cfg.InjectionRate = 0.05 + r.Float64()*0.8
	cfg.Interleave = []string{"none", "message", "packet"}[r.Intn(3)]
	if r.Intn(4) == 0 && cfg.Topology.Kind != "mesh" {
		cfg.CrossLinkFaultFraction = 0.1
	}
	cfg.WarmupCycles = 100
	cfg.MeasureCycles = 400
	cfg.Seed = r.Uint64()
	return cfg
}

func patternChoices() []string {
	return []string{"uniform", "hotspot", "bit-complement", "bit-reverse", "bit-shuffle", "bit-transpose"}
}
