package chipletnet

import (
	"chipletnet/internal/verify"
)

// VerifyRouting statically analyzes the routing function installed on the
// built system: it enumerates every routing channel transition, builds the
// channel dependency graph of the escape sub-network, and proves it
// acyclic (Duato's criterion for virtual cut-through switching), fully
// reachable and VC-consistent. The returned report carries the offending
// dependency cycle as a concrete witness when the proof fails. The
// analysis only reads routing state; the system can still be simulated
// afterwards.
func (s *System) VerifyRouting(opt verify.Options) *verify.Report {
	return verify.Run(s.Topo, opt)
}

// VerifyConfig builds the system described by cfg and statically verifies
// its routing function. The error is non-nil only for build failures;
// verification verdicts (including failures) are in the report — gate on
// Report.Err for pre-flight use.
func VerifyConfig(cfg Config, opt verify.Options) (*verify.Report, error) {
	sys, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	return sys.VerifyRouting(opt), nil
}
