package chipletnet

import (
	"chipletnet/internal/verify"
)

// VerifyRouting statically certifies the routing function installed on the
// built system: one traversal of the (node, destination, tag-class) state
// space proves deadlock freedom (acyclic escape-CDG, Duato's criterion for
// virtual cut-through), total reachability, livelock freedom (bounded
// adaptive runs and terminating escape walks) and VC discipline (Theorem
// 1's monotone escape classes). The returned report carries concrete
// witnesses, in deterministic sorted order, for whichever proof obligation
// fails. The analysis only reads routing state; the system can still be
// simulated afterwards.
func (s *System) VerifyRouting(opt verify.Options) *verify.Report {
	return verify.Run(s.Topo, opt)
}

// Certify runs VerifyRouting and distills the verdict into the exportable
// content-addressable certificate (see verify.Certificate).
func (s *System) Certify(opt verify.Options) (*verify.Certificate, *verify.Report) {
	rep := s.VerifyRouting(opt)
	return rep.Certificate(), rep
}

// VerifyConfig builds the system described by cfg and statically verifies
// its routing function. The error is non-nil only for build failures;
// verification verdicts (including failures) are in the report — gate on
// Report.Err for pre-flight use.
func VerifyConfig(cfg Config, opt verify.Options) (*verify.Report, error) {
	sys, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	return sys.VerifyRouting(opt), nil
}
