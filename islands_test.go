package chipletnet

import (
	"testing"

	"chipletnet/internal/interleave"
	"chipletnet/internal/traffic"
)

// fuzzTopology maps fuzz bytes onto every topology kind at small,
// buildable-ish dimensions (combinations the builders reject are
// skipped by the fuzz body, not crashed on).
func fuzzTopology(kind, d1, d2 uint8) Topology {
	switch kind % 6 {
	case 0:
		return MeshTopology(2+int(d1%3), 2+int(d2%3))
	case 1:
		return HypercubeTopology(1 + int(d1%4))
	case 2:
		return NDTorusTopology(2+int(d1%7), 2+int(d2%3))
	case 3:
		return DragonflyTopology(2 + int(d1%4))
	case 4:
		return TreeTopology(2+int(d1%5), 2+int(d2%2))
	default:
		n := 4 + int(d1%5)
		edges := make([][2]int, 0, n+1)
		for i := 0; i < n; i++ {
			edges = append(edges, [2]int{i, (i + 1) % n})
		}
		edges = append(edges, [2]int{0, n / 2})
		return CustomTopology(n, edges)
	}
}

// FuzzIslandPartition checks the parallel-islands partition invariants
// on random topology/seed/K combinations:
//
//   - every router belongs to exactly one island, islands are contiguous
//     non-empty router-index ranges, and the partition cuts only on
//     chiplet boundaries;
//   - every cut edge is exchanged through a serial mailbox (the link is
//     classified serial exactly when its endpoints live in different
//     islands or it carries a reliability protocol);
//   - the union of the per-island active sets is preserved: stepped in
//     lockstep with an identically-seeded run under the serial
//     active-set engine, the islands engine's merged router/link
//     bitmaps match the serial engine's bit-for-bit every cycle.
//
// The seed corpus pins the historically tricky topologies: the tree
// whose escape channel once formed a dependency cycle (PR 1) and the
// asymmetric ndtorus-8x2.
func FuzzIslandPartition(f *testing.F) {
	f.Add(uint8(4), uint8(3), uint8(0), uint8(2), uint64(1))  // tree(5,2): the escape-cycle topology
	f.Add(uint8(2), uint8(6), uint8(0), uint8(4), uint64(7))  // ndtorus 8x2: asymmetric dims
	f.Add(uint8(1), uint8(2), uint8(0), uint8(3), uint64(42)) // hypercube(3)
	f.Add(uint8(3), uint8(2), uint8(0), uint8(64), uint64(9)) // dragonfly(4), K far above the chiplet count
	f.Add(uint8(0), uint8(0), uint8(0), uint8(1), uint64(5))  // mesh 2x2, single island
	f.Fuzz(func(t *testing.T, kind, d1, d2, k uint8, seed uint64) {
		cfg := DefaultConfig()
		cfg.Topology = fuzzTopology(kind, d1, d2)
		cfg.Seed = seed
		cfg.InjectionRate = 0.1 + float64(seed%25)/100
		cfg.WarmupCycles = 40
		cfg.MeasureCycles = 80

		var plain, isl *System
		var plainErr, islErr error
		withEngine(engineSetup{"active", EngineActive, 0}, func() {
			plain, plainErr = Build(cfg)
		})
		withEngine(engineSetup{"islands", EngineIslands, 1 + int(k%8)}, func() {
			isl, islErr = Build(cfg)
		})
		if (plainErr == nil) != (islErr == nil) {
			t.Fatalf("Build disagrees across engines: active %v, islands %v", plainErr, islErr)
		}
		if plainErr != nil {
			t.Skip() // invalid combinations may be rejected, not crash
		}

		fab := isl.Topo.Fabric
		assign, serial := fab.IslandLayout()
		K := fab.Islands()
		if K < 1 || K > 1+int(k%8) {
			t.Fatalf("island count %d outside [1, %d]", K, 1+int(k%8))
		}
		if len(assign) != len(fab.Routers) {
			t.Fatalf("partition covers %d of %d routers", len(assign), len(fab.Routers))
		}
		perIsland := make([]int, K)
		for i, w := range assign {
			if w < 0 || w >= K {
				t.Fatalf("router %d assigned to island %d of %d", i, w, K)
			}
			perIsland[w]++
			if i == 0 {
				continue
			}
			if w < assign[i-1] {
				t.Fatalf("islands not contiguous: router %d on island %d after island %d", i, w, assign[i-1])
			}
			if w != assign[i-1] && isl.Topo.Nodes[i].Chiplet == isl.Topo.Nodes[i-1].Chiplet {
				t.Fatalf("partition cuts inside chiplet %d at router %d", isl.Topo.Nodes[i].Chiplet, i)
			}
		}
		for w, n := range perIsland {
			if n == 0 {
				t.Fatalf("island %d is empty", w)
			}
		}
		if len(serial) != len(fab.Links) {
			t.Fatalf("classification covers %d of %d links", len(serial), len(fab.Links))
		}
		for _, l := range fab.Links {
			cut := assign[l.Src.Node] != assign[l.Dst.Node]
			if cut && !serial[l.ID] {
				t.Fatalf("cut link %d (%d->%d, islands %d->%d) has no serial mailbox",
					l.ID, l.Src.Node, l.Dst.Node, assign[l.Src.Node], assign[l.Dst.Node])
			}
			if !cut && serial[l.ID] && l.Rel == nil {
				t.Fatalf("internal link %d (%d->%d) classified serial without a reliability protocol",
					l.ID, l.Src.Node, l.Dst.Node)
			}
		}

		// Lockstep union check: identical generators drive both fabrics;
		// after every cycle the islands engine's merged active sets must
		// equal the serial active-set engine's bitmaps exactly.
		newGen := func(s *System) *traffic.Generator {
			pat, err := traffic.NewPattern(cfg.Pattern, len(s.Topo.Cores), cfg.Seed)
			if err != nil {
				t.Fatal(err)
			}
			gran, err := interleave.ParseGranularity(cfg.Interleave)
			if err != nil {
				t.Fatal(err)
			}
			gen, err := traffic.NewGenerator(s.Topo.Cores, pat, cfg.InjectionRate,
				cfg.PacketFlits, cfg.MsgPackets, interleave.Policy{G: gran}, cfg.Seed)
			if err != nil {
				t.Fatal(err)
			}
			return gen
		}
		genPlain, genIsl := newGen(plain), newGen(isl)
		pf := plain.Topo.Fabric
		for cy := int64(1); cy <= cfg.WarmupCycles+cfg.MeasureCycles; cy++ {
			genPlain.SetMeasured(cy > cfg.WarmupCycles)
			genIsl.SetMeasured(cy > cfg.WarmupCycles)
			genPlain.Tick(pf, cy)
			genIsl.Tick(fab, cy)
			pf.Step()
			fab.Step()
			if pf.InFlight() != fab.InFlight() {
				t.Fatalf("cycle %d: in-flight diverged: active %d, islands %d", cy, pf.InFlight(), fab.InFlight())
			}
			wantR, wantL := pf.ActiveSets()
			gotR, gotL := fab.ActiveSets()
			for i := range wantR {
				if gotR[i] != wantR[i] {
					t.Fatalf("cycle %d: router active-set word %d diverged: islands %x, active %x", cy, i, gotR[i], wantR[i])
				}
			}
			for i := range wantL {
				if gotL[i] != wantL[i] {
					t.Fatalf("cycle %d: link active-set word %d diverged: islands %x, active %x", cy, i, gotL[i], wantL[i])
				}
			}
		}
	})
}
