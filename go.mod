module chipletnet

go 1.22
